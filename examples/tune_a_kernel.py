#!/usr/bin/env python3
"""Tuning walkthrough: apply the paper's takeaways to your own kernel.

Scenario: you have a CUDA kernel (here: a stencil like the paper's
srad) and must choose (a) a data-transfer configuration, (b) a launch
geometry, and (c) an L1/shared-memory carveout. This example uses the
advisor (Takeaways 1-5 as code), then *verifies* each recommendation
with simulator sweeps, exactly like Sec. 5 of the paper.

Usage:
    python examples/tune_a_kernel.py
"""

from repro import SizeClass, TransferMode, get_workload, recommend_mode
from repro.core.advisor import (check_carveout, check_input_size,
                                check_launch_geometry)
from repro.harness import (carveout_sensitivity, normalized_sweep,
                           render_sweep, threads_sensitivity)


def main() -> None:
    workload = get_workload("srad")
    size = SizeClass.SUPER
    program = workload.program(size)
    kernel = program.descriptors()[0]

    print("=== Step 1: pick an input size (Takeaway 1) ===")
    for candidate in SizeClass.ordered():
        for note in check_input_size(candidate):
            print(f"  {note}")

    print("\n=== Step 2: pick a transfer configuration ===")
    recommendation = recommend_mode(program)
    print(recommendation.render())

    print("\n=== Step 3: check the launch geometry (Takeaway 4) ===")
    for note in check_launch_geometry(kernel):
        print(f"  {note}")
    print("\nverification sweep (vector_seq threads/block, Fig. 12):")
    sweep = threads_sensitivity(iterations=3)
    print(render_sweep(normalized_sweep(sweep, baseline_key=1024),
                       "#threads", ""))

    print("\n=== Step 4: check the carveout (Takeaway 5) ===")
    for carveout_kb in (2, 32, 128):
        notes = check_carveout(kernel, carveout_kb * 1024,
                               recommendation.mode)
        print(f"  {carveout_kb:>3} KB carveout: " + "; ".join(notes))
    print("\nverification sweep (vector_seq carveout, Fig. 13):")
    sweep = carveout_sensitivity(iterations=3)
    print(render_sweep(normalized_sweep(sweep, baseline_key=32),
                       "smem KB", ""))

    print("\n=== Step 5: counter-example - nw (prefetch hurts) ===")
    nw = get_workload("nw")
    print(recommend_mode(nw.program(size)).render())


if __name__ == "__main__":
    main()
