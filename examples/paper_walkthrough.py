#!/usr/bin/env python3
"""A guided tour: the paper's five takeaways, regenerated live.

Walks through Takeaways 1-5 in order, running the experiment behind
each and printing the evidence next to the claim. Takes a couple of
minutes at the default iteration count.

Usage:
    python examples/paper_walkthrough.py [--iterations N]
"""

import argparse

from repro import SizeClass, TransferMode
from repro.harness import (blocks_sensitivity, carveout_sensitivity,
                           comparison_sweep, counter_sweep,
                           geomean_improvements, normalized_sweep,
                           render_sweep, threads_sensitivity)
from repro.harness.size_search import assess_sizes, render_size_search
from repro.workloads.registry import MICRO_NAMES


def takeaway1(iterations: int) -> None:
    print("=" * 72)
    print("TAKEAWAY 1: big inputs are not automatically stable - pick "
          "sizes\nconsidering DRAM chip capacity.")
    print("=" * 72)
    assessments = assess_sizes("vector_seq", iterations=iterations)
    print(render_size_search("vector_seq", assessments))


def takeaway2(iterations: int) -> None:
    print("\n" + "=" * 72)
    print("TAKEAWAY 2: UVM needs prefetch (+21 % on apps); regular "
          "patterns\nfavor prefetch, irregular ones favor Async Memcpy.")
    print("=" * 72)
    micro = comparison_sweep(MICRO_NAMES, SizeClass.SUPER,
                             iterations=iterations)
    improvements = geomean_improvements(micro)
    for mode, value in improvements.items():
        print(f"  micro geomean {mode:>20}: {value:+6.2f} %")
    anomalies = comparison_sweep(("2DCONV", "lud"), SizeClass.SUPER,
                                 iterations=iterations)
    regular = anomalies["2DCONV"]
    irregular = anomalies["lud"]
    print(f"  2DCONV (regular):  uvm_prefetch "
          f"{regular.normalized_total(TransferMode.UVM_PREFETCH):.3f}x, "
          f"async {regular.normalized_total(TransferMode.ASYNC):.3f}x")
    print(f"  lud (irregular):   uvm_prefetch "
          f"{irregular.normalized_total(TransferMode.UVM_PREFETCH):.3f}x, "
          f"async {irregular.normalized_total(TransferMode.ASYNC):.3f}x")


def takeaway3() -> None:
    print("\n" + "=" * 72)
    print("TAKEAWAY 3: async's cost is control instructions; its win is "
          "lower\nL1 miss rates.")
    print("=" * 72)
    counters = counter_sweep(workloads=("gemm", "lud"))
    gemm = counters["gemm"]
    lud = counters["lud"]
    print(f"  gemm: control insts +"
          f"{(gemm['async']['control'] / gemm['standard']['control'] - 1) * 100:.1f} % "
          "(paper +39.98 %), miss rates unchanged")
    print(f"  lud: load miss "
          f"{(lud['async']['load_miss'] / lud['standard']['load_miss'] - 1) * 100:+.1f} % "
          "(paper -35.96 %), store miss "
          f"{(lud['async']['store_miss'] / lud['standard']['store_miss'] - 1) * 100:+.1f} % "
          "(paper -69.99 %)")


def takeaway4(iterations: int) -> None:
    print("\n" + "=" * 72)
    print("TAKEAWAY 4: insensitive to #blocks, very sensitive to "
          "threads/block.")
    print("=" * 72)
    blocks = blocks_sensitivity(blocks=(4096, 1024, 256),
                                iterations=iterations)
    print(render_sweep(normalized_sweep(blocks), "#blocks", "blocks:"))
    threads = threads_sensitivity(threads=(1024, 128, 32),
                                  iterations=iterations)
    print(render_sweep(normalized_sweep(threads, baseline_key=1024),
                       "#threads", "threads:"))


def takeaway5(iterations: int) -> None:
    print("\n" + "=" * 72)
    print("TAKEAWAY 5: the L1/shared-memory carveout has a sweet spot - "
          "too\nsmall hurts async, too large hurts UVM.")
    print("=" * 72)
    carveouts = carveout_sensitivity(carveouts_kb=(2, 32, 128),
                                     iterations=iterations)
    print(render_sweep(normalized_sweep(carveouts, baseline_key=32),
                       "smem KB", ""))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=4)
    args = parser.parse_args()
    takeaway1(args.iterations)
    takeaway2(args.iterations)
    takeaway3()
    takeaway4(args.iterations)
    takeaway5(args.iterations)
    print("\ndone - see EXPERIMENTS.md for the full paper-vs-measured "
          "record.")


if __name__ == "__main__":
    main()
