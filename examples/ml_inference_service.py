#!/usr/bin/env python3
"""ML inference service: darknet networks + the Sec. 6 inter-job pipeline.

The paper's intro motivates GPU data-transfer optimization with ML
serving. This example:

1. runs real NumPy inference with the darknet substrate (yolov3-tiny
   on a synthetic image) to show the functional layer works,
2. characterizes all four networks under the five configurations, and
3. applies the paper's proposed inter-job data-transfer model
   (Fig. 14): overlapping allocation of the next request with the
   current request's kernels, as a KaaS scheduler would.

Usage:
    python examples/ml_inference_service.py [--iterations N]
"""

import argparse

import numpy as np

from repro import (ALL_MODES, Experiment, SizeClass, TransferMode,
                   get_workload, interjob_speedup)
from repro.harness import format_ns, render_table
from repro.workloads.darknet import build_yolov3_tiny


def functional_demo() -> None:
    print("=== Functional inference (yolov3-tiny, 96x96 synthetic) ===")
    net = build_yolov3_tiny(96)
    rng = np.random.default_rng(42)
    image = rng.random((1, 3, 96, 96)).astype(np.float32)
    detections = net.forward(image)
    print(f"  layers: {len(net.layers)}, weights: "
          f"{net.weight_bytes() / 1e6:.1f} MB, "
          f"output grid: {detections.shape}")
    objectness = detections.reshape(1, 3, 85, -1)[:, :, 4]
    print(f"  mean objectness (sigmoid, should be ~0.5 with random "
          f"weights): {objectness.mean():.3f}")


def characterize(iterations: int) -> None:
    print("\n=== Per-network configuration comparison (Super) ===")
    rows = []
    for name in ("resnet18", "resnet50", "yolov3-tiny", "yolov3"):
        comparison = Experiment(workload=name, size=SizeClass.SUPER,
                                iterations=iterations).run()
        rows.append((name, *(f"{comparison.normalized_total(m):.3f}"
                             for m in ALL_MODES)))
    print(render_table(("network", *(m.value for m in ALL_MODES)), rows))
    print("note the yolov3 anomaly: adding Async Memcpy on top of "
          "uvm_prefetch does not help - its gemm kernels are regular and "
          "already pipelined (Sec. 4.1.2).")


def service_pipeline() -> None:
    print("\n=== Inter-job pipeline (Fig. 14): batched yolov3-tiny jobs ===")
    program = get_workload("yolov3-tiny").program(SizeClass.SUPER)
    for mode in (TransferMode.STANDARD, TransferMode.UVM_PREFETCH_ASYNC):
        result = interjob_speedup(program, mode, jobs=8)
        print(f"  {mode.value:>20}: sequential "
              f"{format_ns(result['sequential_wall_ns'])} -> pipelined "
              f"{format_ns(result['pipelined_wall_ns'])} "
              f"({result['improvement_pct']:.1f} % faster)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=5)
    args = parser.parse_args()
    functional_demo()
    characterize(args.iterations)
    service_pipeline()


if __name__ == "__main__":
    main()
