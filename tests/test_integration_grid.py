"""Full-grid integration: every workload under every configuration.

One run per (workload, mode) cell at a reduced size, checking the
invariants that must hold everywhere: positive component times,
plausible breakdowns, UVM accounting consistency, and counter sanity.
"""

import pytest

from repro.core.configs import ALL_MODES, TransferMode
from repro.core.execution import execute_program
from repro.workloads.registry import ALL_NAMES, get_workload
from repro.workloads.sizes import SizeClass

SIZE = SizeClass.LARGE

_CACHE = {}


def run_cell(name, mode):
    key = (name, mode)
    if key not in _CACHE:
        program = get_workload(name).program(SIZE)
        _CACHE[key] = execute_program(program, mode, seed=11,
                                      size_label=SIZE.label)
    return _CACHE[key]


@pytest.mark.parametrize("name", ALL_NAMES)
@pytest.mark.parametrize("mode", ALL_MODES)
class TestGridInvariants:
    def test_components_positive(self, name, mode):
        result = run_cell(name, mode)
        assert result.alloc_ns > 0
        assert result.kernel_ns > 0
        assert result.total_ns == pytest.approx(
            result.alloc_ns + result.memcpy_ns + result.kernel_ns)

    def test_wall_time_consistent(self, name, mode):
        result = run_cell(name, mode)
        assert 0 < result.wall_ns <= result.total_ns * 1.1

    def test_counters_collected(self, name, mode):
        result = run_cell(name, mode)
        assert result.counters.kernels
        assert result.counters.instructions.total > 0
        misses = result.counters.mean_miss_rates()
        assert 0.0 <= misses.load <= 1.0
        assert 0.0 <= misses.store <= 1.0

    def test_occupancy_bounded(self, name, mode):
        result = run_cell(name, mode)
        assert 0.0 <= result.occupancy <= 1.0
        assert 0.0 <= result.gpu_busy_fraction <= 1.0


@pytest.mark.parametrize("name", ALL_NAMES)
class TestCrossModeInvariants:
    def test_explicit_modes_share_copy_volume(self, name):
        standard = run_cell(name, TransferMode.STANDARD)
        async_ = run_cell(name, TransferMode.ASYNC)
        # async changes kernels, never the explicit copies.
        assert async_.memcpy_ns == pytest.approx(standard.memcpy_ns,
                                                 rel=0.10)
        assert async_.alloc_ns == pytest.approx(standard.alloc_ns,
                                                rel=0.10)

    def test_prefetch_moves_transfer_out_of_kernels(self, name):
        uvm = run_cell(name, TransferMode.UVM)
        prefetch = run_cell(name, TransferMode.UVM_PREFETCH)
        # With a bulk prefetch, kernels no longer fault: kernel time
        # must not increase.
        assert prefetch.kernel_ns <= uvm.kernel_ns * 1.05

    def test_every_mode_differs_somewhere(self, name):
        totals = {mode: run_cell(name, mode).total_ns
                  for mode in ALL_MODES}
        assert len({round(v, 3) for v in totals.values()}) >= 3
