"""Shared fixtures."""

import numpy as np
import pytest

from repro.sim.calibration import default_calibration
from repro.sim.engine import Environment
from repro.sim.hardware import default_system


@pytest.fixture
def system():
    return default_system()


@pytest.fixture
def calib():
    return default_calibration()


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
