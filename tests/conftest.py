"""Shared fixtures."""

import numpy as np
import pytest

from repro.sim.calibration import default_calibration
from repro.sim.engine import Environment
from repro.sim.hardware import default_system


@pytest.fixture(autouse=True)
def _hermetic_result_cache(tmp_path, monkeypatch):
    """Keep every test's sweep cache inside its tmp dir.

    CLI commands default the result cache to ``$REPRO_CACHE_DIR`` (or
    ``~/.cache``); pointing it at tmp_path keeps tests hermetic and
    cold-cached.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def system():
    return default_system()


@pytest.fixture
def calib():
    return default_calibration()


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
