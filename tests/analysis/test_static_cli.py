"""CLI-level tests for ``repro lint``: --static, formats, exit codes.

Exit-code contract (documented in ``repro lint --help``):
0 clean, 1 active errors, 4 baseline-grandfathered findings only
(1 with --strict).
"""

import json
from pathlib import Path

import pytest

from repro.cli import EXIT_BASELINE, main

HAZARD = "import time\n\ndef leaky():\n    return time.time()\n"


@pytest.fixture
def hazard_pkg(tmp_path):
    """A throwaway package whose sim/ module carries one D401."""
    pkg = tmp_path / "repro"
    (pkg / "sim").mkdir(parents=True)
    (pkg / "sim" / "bad.py").write_text(HAZARD)
    return pkg


def lint(capsys, *argv):
    code = main(["lint", *argv])
    return code, capsys.readouterr().out


class TestExitCodes:
    def test_repo_is_static_clean_exit_0(self, capsys):
        code, out = lint(capsys, "--static")
        assert code == 0
        assert "clean" in out

    def test_active_error_exits_1(self, capsys, tmp_path, hazard_pkg):
        code, out = lint(capsys, "--static", "--path", str(hazard_pkg),
                         "--baseline", str(tmp_path / "b.json"))
        assert code == 1
        assert "D401" in out

    def test_baseline_lifecycle_exits_4_then_strict_1(
            self, capsys, tmp_path, hazard_pkg):
        baseline = tmp_path / "b.json"
        code, out = lint(capsys, "--static", "--path", str(hazard_pkg),
                         "--baseline", str(baseline), "--write-baseline")
        assert code == 0
        assert "baseline written" in out
        assert json.loads(baseline.read_text())["version"] == 1

        code, out = lint(capsys, "--static", "--path", str(hazard_pkg),
                         "--baseline", str(baseline))
        assert code == EXIT_BASELINE == 4
        assert "baselined" in out

        code, out = lint(capsys, "--static", "--path", str(hazard_pkg),
                         "--baseline", str(baseline), "--strict")
        assert code == 1

    def test_editing_baselined_line_reactivates(self, capsys, tmp_path,
                                                hazard_pkg):
        baseline = tmp_path / "b.json"
        lint(capsys, "--static", "--path", str(hazard_pkg),
             "--baseline", str(baseline), "--write-baseline")
        target = hazard_pkg / "sim" / "bad.py"
        target.write_text(target.read_text().replace(
            "time.time()", "time.time() + 1"))
        code, _ = lint(capsys, "--static", "--path", str(hazard_pkg),
                       "--baseline", str(baseline))
        assert code == 1

    def test_model_lint_unchanged_exit_0(self, capsys):
        code, _ = lint(capsys, "vector_seq", "--size", "small")
        assert code == 0


class TestFormats:
    def test_json_on_static(self, capsys, tmp_path, hazard_pkg):
        code, out = lint(capsys, "--static", "--path", str(hazard_pkg),
                         "--baseline", str(tmp_path / "b.json"),
                         "--format", "json")
        assert code == 1
        payload = json.loads(out)
        assert payload["version"] == 1
        assert any(d["rule"] == "D401" and "path" in d
                   for d in payload["diagnostics"])

    def test_json_reports_baselined_separately(self, capsys, tmp_path,
                                               hazard_pkg):
        baseline = tmp_path / "b.json"
        lint(capsys, "--static", "--path", str(hazard_pkg),
             "--baseline", str(baseline), "--write-baseline")
        code, out = lint(capsys, "--static", "--path", str(hazard_pkg),
                         "--baseline", str(baseline), "--format", "json")
        assert code == EXIT_BASELINE
        payload = json.loads(out)
        assert payload["counts"]["error"] == 0
        assert [d["rule"] for d in payload["baselined"]] == ["D401"]

    def test_sarif_on_static(self, capsys, tmp_path, hazard_pkg):
        _, out = lint(capsys, "--static", "--path", str(hazard_pkg),
                      "--baseline", str(tmp_path / "b.json"),
                      "--format", "sarif")
        doc = json.loads(out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "D401"

    def test_sarif_on_model_lint(self, capsys):
        code, out = lint(capsys, "vector_seq", "--size", "small",
                         "--format", "sarif")
        assert code == 0
        doc = json.loads(out)
        ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert {"K101", "D401"} <= ids

    def test_json_on_model_lint_keeps_contract(self, capsys):
        code, out = lint(capsys, "vector_seq", "--size", "small",
                         "--format", "json")
        assert code == 0
        payload = json.loads(out)
        assert payload["version"] == 1
        assert set(payload["counts"]) == {"error", "warning", "info"}


class TestCatalogAndManifest:
    def test_rules_prints_both_families(self, capsys):
        code, out = lint(capsys, "--rules")
        assert code == 0
        for rule_id in ("K101", "P201", "S301", "D401", "D409",
                        "F501", "F505", "A001"):
            assert rule_id in out

    def test_update_manifest_is_idempotent_on_clean_repo(self, capsys):
        from repro.analysis.fingerprints import default_manifest_path
        before = default_manifest_path().read_text()
        code, _ = lint(capsys, "--static", "--update-manifest")
        assert code == 0
        assert default_manifest_path().read_text() == before

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "--help"])
        out = capsys.readouterr().out
        assert "exit codes" in out
        assert "4" in out and "baseline" in out


class TestBaselineErrors:
    def test_unreadable_baseline_version_fails_loudly(self, capsys,
                                                      tmp_path,
                                                      hazard_pkg):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99, "entries": []}')
        with pytest.raises(SystemExit):
            main(["lint", "--static", "--path", str(hazard_pkg),
                  "--baseline", str(bad)])


def test_default_baseline_file_is_checked_in():
    root = Path(__file__).resolve().parents[2]
    baseline = root / ".repro-lint-baseline.json"
    assert baseline.exists()
    payload = json.loads(baseline.read_text())
    assert payload == {"version": 1, "entries": []}
