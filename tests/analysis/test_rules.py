"""Lint-rule tests: each rule fires on a crafted bad program and stays
silent on the clean baseline."""

import dataclasses

import pytest

from repro.analysis import (DEFAULT_REGISTRY, LintContext, LintError,
                            Severity, lint_program, run_rules,
                            validate_program)
from repro.core.configs import TransferMode
from repro.sim.kernel import AccessPattern, KernelDescriptor
from repro.sim.program import (BufferDirection, BufferSpec, KernelPhase,
                               Program)

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


def make_descriptor(**overrides):
    base = dict(
        name="k",
        blocks=128,
        threads_per_block=256,
        tiles_per_block=16,
        tile_bytes=2048,
        compute_cycles_per_tile=100.0,
        access_pattern=AccessPattern.SEQUENTIAL,
        write_bytes=1024,
    )
    base.update(overrides)
    return KernelDescriptor(**base)


def make_program(desc=None, buffers=None, phases=None, **phase_kwargs):
    desc = desc or make_descriptor()
    if buffers is None:
        buffers = (
            BufferSpec("in", desc.load_bytes, BufferDirection.IN),
            BufferSpec("out", desc.write_bytes, BufferDirection.OUT),
        )
    if phases is None:
        phases = (KernelPhase(desc, **phase_kwargs),)
    return Program(name="test", buffers=buffers, phases=phases)


def rules_fired(program, mode=TransferMode.STANDARD, **build_kwargs):
    ctx = LintContext.build(program, mode, **build_kwargs)
    return {d.rule for d in run_rules(ctx)}


class TestCleanBaseline:
    @pytest.mark.parametrize("mode", list(TransferMode))
    def test_baseline_program_is_clean(self, mode):
        report = lint_program(make_program(), mode)
        assert report.counts() == {"error": 0, "warning": 0, "info": 0}
        assert report.contexts == 1

    def test_validate_program_passes_clean(self):
        report = validate_program(make_program(), TransferMode.STANDARD)
        assert not report.has_errors


class TestKernelRules:
    def test_k101_smem_overflow(self):
        # 200 KiB static > 164 KiB device maximum under any mode.
        desc = make_descriptor(smem_static_bytes=200 * KIB)
        assert "K101" in rules_fired(make_program(desc))

    def test_k101_async_double_buffer_counts_twice(self):
        # 90 KiB tile: 1x fits the 164 KiB max, 2x does not.
        desc = make_descriptor(tile_bytes=90 * KIB, tiles_per_block=1,
                               blocks=8192)
        assert "K101" not in rules_fired(make_program(desc),
                                         TransferMode.STANDARD)
        assert "K101" in rules_fired(make_program(desc),
                                     TransferMode.ASYNC)

    def test_k102_carveout_spill(self):
        # 40 KiB static fits the device max but not the 32 KiB carveout.
        desc = make_descriptor(smem_static_bytes=40 * KIB)
        fired = rules_fired(make_program(desc))
        assert "K102" in fired
        assert "K101" not in fired

    def test_k102_respects_custom_carveout(self):
        desc = make_descriptor(smem_static_bytes=40 * KIB)
        fired = rules_fired(make_program(desc),
                            smem_carveout_bytes=64 * KIB)
        assert "K102" not in fired

    def test_k103_register_file_overflow(self):
        # 256 regs x 1024 threads x 4 B = 1 MiB > 256 KiB file.
        desc = make_descriptor(registers_per_thread=256,
                               threads_per_block=1024)
        assert "K103" in rules_fired(make_program(desc))

    def test_k105_async_copy_coverage(self):
        # 1 copy x 16 B x 256 threads = 4 KiB < 16 KiB tile.
        desc = make_descriptor(tile_bytes=16 * KIB,
                               async_copies_per_tile=1)
        assert "K105" in rules_fired(make_program(desc),
                                     TransferMode.ASYNC)
        # The rule only applies under async staging.
        assert "K105" not in rules_fired(make_program(desc),
                                         TransferMode.STANDARD)

    def test_k106_retile_drift(self):
        # A single 1000-byte tile re-geared onto the Fig. 11 probe
        # block counts (108, 432) rounds to 972 and 864 bytes of
        # traffic: > 1 % drift on every probe.
        desc = make_descriptor(blocks=1, tiles_per_block=1,
                               tile_bytes=1000)
        assert "K106" in rules_fired(make_program(desc))

    def test_k107_warp_alignment(self):
        desc = make_descriptor(threads_per_block=100)
        assert "K107" in rules_fired(make_program(desc))

    def test_k108_grid_underutilization(self):
        desc = make_descriptor(blocks=4)
        assert "K108" in rules_fired(make_program(desc))

    def test_k109_async_serialized(self):
        desc = make_descriptor(async_serializes=True)
        assert "K109" in rules_fired(make_program(desc),
                                     TransferMode.ASYNC)
        assert "K109" not in rules_fired(make_program(desc),
                                         TransferMode.STANDARD)


class TestProgramRules:
    def huge_program(self, footprint=45 * GIB):
        desc = make_descriptor(blocks=8192, tiles_per_block=512,
                               tile_bytes=16 * KIB,
                               data_footprint_bytes=footprint)
        buffers = (
            BufferSpec("in", footprint, BufferDirection.IN),
            BufferSpec("out", MIB, BufferDirection.OUT),
        )
        return make_program(desc, buffers=buffers)

    def test_p201_explicit_overflow_is_error(self):
        report = lint_program(self.huge_program(), TransferMode.STANDARD)
        rules = {d.rule: d for d in report}
        assert rules["P201"].severity is Severity.ERROR

    def test_p201_managed_oversubscription_is_info(self):
        report = lint_program(self.huge_program(), TransferMode.UVM)
        rules = {d.rule: d for d in report}
        assert rules["P201"].severity is Severity.INFO
        assert not report.has_errors

    def test_p202_uncovered_input(self):
        desc = make_descriptor()  # reads 4 MiB
        buffers = (
            BufferSpec("in", 64 * MIB, BufferDirection.IN),
            BufferSpec("out", MIB, BufferDirection.OUT),
        )
        assert "P202" in rules_fired(make_program(desc, buffers=buffers))

    def test_p202_fresh_data_phases_cover_per_launch(self):
        # 16 launches each streaming a fresh 4 MiB band cover 64 MiB.
        desc = make_descriptor()
        buffers = (
            BufferSpec("in", 64 * MIB, BufferDirection.IN),
            BufferSpec("out", MIB, BufferDirection.OUT),
        )
        program = make_program(desc, buffers=buffers, count=16,
                               fresh_data=True)
        assert "P202" not in rules_fired(program)

    def test_p203_footprint_exceeds_buffers(self):
        desc = make_descriptor(data_footprint_bytes=512 * MIB)
        buffers = (
            BufferSpec("in", 4 * MIB, BufferDirection.IN),
            BufferSpec("out", MIB, BufferDirection.OUT),
        )
        assert "P203" in rules_fired(make_program(desc, buffers=buffers))

    def test_p204_fresh_data_reuse(self):
        desc = make_descriptor(reuse=4.0,
                               data_footprint_bytes=MIB)
        program = make_program(desc, fresh_data=True)
        assert "P204" in rules_fired(program)

    def test_p205_scratch_host_fraction(self):
        desc = make_descriptor()
        buffers = (
            BufferSpec("in", desc.load_bytes, BufferDirection.IN),
            BufferSpec("tmp", MIB, BufferDirection.SCRATCH,
                       host_read_fraction=0.5),
        )
        assert "P205" in rules_fired(make_program(desc, buffers=buffers))


class TestRegistryIntegration:
    def test_disable_suppresses_rule(self):
        desc = make_descriptor(threads_per_block=100)
        program = make_program(desc)
        assert "K107" in rules_fired(program)
        DEFAULT_REGISTRY.disable("K107")
        try:
            assert "K107" not in rules_fired(program)
        finally:
            DEFAULT_REGISTRY.enable("K107")

    def test_severity_remap_applies_to_findings(self):
        desc = make_descriptor(threads_per_block=100)
        program = make_program(desc)
        DEFAULT_REGISTRY.configure("K107", severity="warning")
        try:
            ctx = LintContext.build(program, TransferMode.STANDARD)
            diags = {d.rule: d for d in run_rules(ctx)}
            assert diags["K107"].severity is Severity.WARNING
        finally:
            DEFAULT_REGISTRY.configure("K107", severity=None)

    def test_validate_program_raises_with_report(self):
        desc = make_descriptor(smem_static_bytes=200 * KIB)
        with pytest.raises(LintError, match="K101") as excinfo:
            validate_program(make_program(desc), TransferMode.STANDARD)
        assert excinfo.value.report.has_errors

    def test_diagnostics_carry_workload_and_mode(self):
        desc = make_descriptor(smem_static_bytes=200 * KIB)
        report = lint_program(make_program(desc), TransferMode.UVM)
        diag = report.errors[0]
        assert diag.workload == "test"
        assert diag.mode == "uvm"
        assert diag.location.startswith("phase[0]/kernel:")

    def test_duck_typed_mode(self):
        # The analysis layer accepts anything with kernel_flags()+value.
        class FakeMode:
            value = "fake"

            @staticmethod
            def kernel_flags():
                from repro.sim.timing import ConfigFlags
                return ConfigFlags(use_async=True)

        desc = make_descriptor(async_serializes=True)
        ctx = LintContext.build(make_program(desc), FakeMode())
        fired = {d.rule for d in run_rules(ctx)}
        assert "K109" in fired
        assert next(iter(run_rules(ctx))).mode == "fake"


def test_dataclass_replace_keeps_descriptor_valid():
    # Guard: the crafted descriptors above rely on replace-style
    # construction staying within __post_init__ bounds.
    desc = make_descriptor()
    clone = dataclasses.replace(desc, blocks=desc.blocks)
    assert clone == desc
