"""Stream/event-graph analyzer tests: races, cycles, dead syncs."""

import numpy as np
import pytest

from repro.analysis.streamcheck import (StreamGraph, analyze_records)
from repro.core.streaming import execute_program_streamed
from repro.sim.pcie import TransferKind
from repro.sim.program import (BufferDirection, BufferSpec, KernelPhase,
                               Program)
from repro.sim.runtime import CudaRuntime
from repro.sim.streams import CudaStream, device_synchronize
from repro.sim.timing import ConfigFlags

from ..analysis.test_rules import make_descriptor


@pytest.fixture
def rt(system, calib):
    return CudaRuntime(system, calib, np.random.default_rng(0))


def rules_of(diagnostics):
    return {d.rule for d in diagnostics}


class TestDeclarativeGraph:
    def test_classic_h2d_kernel_race(self):
        graph = StreamGraph()
        graph.op("copy", "H2D", kind="copy", writes=("A",))
        graph.op("compute", "kernel", kind="kernel", reads=("A",))
        diags = graph.analyze()
        assert rules_of(diags) == {"S301"}
        assert "A" in diags[0].message

    def test_event_edge_suppresses_race(self):
        graph = StreamGraph()
        copy = graph.op("copy", "H2D", kind="copy", writes=("A",))
        graph.op("compute", "kernel", kind="kernel", reads=("A",),
                 after=copy)
        assert graph.analyze() == []

    def test_host_sync_suppresses_race(self):
        graph = StreamGraph()
        graph.op("copy", "H2D", kind="copy", writes=("A",))
        graph.sync("copy")
        graph.op("compute", "kernel", kind="kernel", reads=("A",))
        assert graph.analyze() == []

    def test_read_read_is_not_a_race(self):
        graph = StreamGraph()
        graph.op("s1", "k1", reads=("A",))
        graph.op("s2", "k2", reads=("A",))
        assert graph.analyze() == []

    def test_disjoint_buffers_do_not_race(self):
        graph = StreamGraph()
        graph.op("s1", "k1", writes=("A",))
        graph.op("s2", "k2", writes=("B",))
        assert graph.analyze() == []

    def test_transitive_ordering_suppresses_race(self):
        # a -> b (event), b -> c (FIFO): a happens-before c.
        graph = StreamGraph()
        a = graph.op("s1", "produce", writes=("A",))
        graph.op("s2", "relay", after=a)
        graph.op("s2", "consume", reads=("A",))
        assert graph.analyze() == []

    def test_write_write_race(self):
        graph = StreamGraph()
        graph.op("s1", "w1", writes=("A",))
        graph.op("s2", "w2", writes=("A",))
        assert rules_of(graph.analyze()) == {"S301"}

    def test_cycle_detected(self):
        graph = StreamGraph()
        a = graph.op("s1", "a")
        b = graph.op("s2", "b", after=a)
        graph.add_dependency(a, after=b)
        diags = graph.analyze()
        assert rules_of(diags) == {"S302"}
        assert "deadlock" in diags[0].message

    def test_cycle_suppresses_race_analysis(self):
        graph = StreamGraph()
        a = graph.op("s1", "a", writes=("A",))
        b = graph.op("s2", "b", reads=("A",))
        graph.add_dependency(a, after=b)
        graph.add_dependency(b, after=a)
        assert rules_of(graph.analyze()) == {"S302"}

    def test_dead_sync_on_empty_stream(self):
        graph = StreamGraph()
        graph.sync("s1")
        diags = graph.analyze()
        assert rules_of(diags) == {"S303"}

    def test_back_to_back_syncs(self):
        graph = StreamGraph()
        graph.op("s1", "work")
        graph.sync("s1")
        graph.sync("s1")
        diags = graph.analyze()
        # First sync waits on real work; second waits on nothing.
        assert [d.rule for d in diags] == ["S303"]

    def test_workload_mode_stamped(self):
        graph = StreamGraph()
        graph.sync("s1")
        diag = graph.analyze(workload="w", mode="standard")[0]
        assert diag.workload == "w"
        assert diag.mode == "standard"


class TestFromRecords:
    def test_recorded_race_detected(self, rt):
        copy_stream = CudaStream(rt, "copy")
        compute_stream = CudaStream(rt, "compute")
        copy_stream.enqueue(
            rt._transfer("copy", TransferKind.H2D, 1 << 20),
            label="H2D", kind="copy", writes=("A",))
        compute_stream.enqueue(
            rt.launch(make_descriptor(), ConfigFlags(),
                      resident_fraction=1.0),
            label="kernel", kind="kernel", reads=("A",))
        rt.env.run()
        diags = analyze_records(rt.stream_ops, workload="w",
                                mode="standard")
        assert rules_of(diags) == {"S301"}

    def test_recorded_after_edge_suppresses_race(self, rt):
        copy_stream = CudaStream(rt, "copy")
        compute_stream = CudaStream(rt, "compute")
        copy = copy_stream.enqueue(
            rt._transfer("copy", TransferKind.H2D, 1 << 20),
            label="H2D", kind="copy", writes=("A",))
        compute_stream.enqueue(
            rt.launch(make_descriptor(), ConfigFlags(),
                      resident_fraction=1.0),
            after=copy, label="kernel", kind="kernel", reads=("A",))
        rt.env.run()
        assert analyze_records(rt.stream_ops) == []

    def test_recorded_sync_suppresses_race(self, rt):
        copy_stream = CudaStream(rt, "copy")
        compute_stream = CudaStream(rt, "compute")

        def main():
            copy_stream.enqueue(
                rt._transfer("copy", TransferKind.H2D, 1 << 20),
                kind="copy", writes=("A",))
            yield from copy_stream.synchronize()
            compute_stream.enqueue(
                rt.launch(make_descriptor(), ConfigFlags(),
                          resident_fraction=1.0),
                kind="kernel", reads=("A",))
            yield from compute_stream.synchronize()

        rt.env.run_process(main())
        assert analyze_records(rt.stream_ops) == []

    def test_drained_sync_reported_dead(self, rt):
        stream = CudaStream(rt, "s")
        stream.enqueue(rt._transfer("copy", TransferKind.H2D, 1 << 20))
        rt.env.run()  # drain before synchronizing

        def main():
            yield from stream.synchronize()

        rt.env.run_process(main())
        assert rules_of(analyze_records(rt.stream_ops)) == {"S303"}

    def test_from_streams_interleaves_by_sequence(self, rt):
        s1 = CudaStream(rt, "s1")
        s2 = CudaStream(rt, "s2")
        a = s1.enqueue(rt._transfer("c", TransferKind.H2D, 1 << 20),
                       writes=("A",))
        s2.enqueue(rt.launch(make_descriptor(), ConfigFlags(),
                             resident_fraction=1.0),
                   after=a, reads=("A",))
        rt.env.run()
        graph = StreamGraph.from_streams(s1, s2)
        assert len(graph.ops) == 2
        assert graph.analyze() == []


class TestStreamedExecutionLedger:
    def make_program(self, count=1):
        desc = make_descriptor(blocks=256)
        buffers = (
            BufferSpec("in", desc.load_bytes, BufferDirection.IN),
            BufferSpec("out", desc.write_bytes, BufferDirection.OUT),
        )
        return Program(name="streamed", buffers=buffers,
                       phases=(KernelPhase(desc, count=count),))

    def run_ledger(self, program, system, calib, chunks=4):
        rng = np.random.default_rng(0)
        rt = CudaRuntime(system, calib, rng,
                         footprint_bytes=program.footprint_bytes)
        from repro.core.streaming import _streamed_process
        rt.run(_streamed_process(rt, program, chunks, False, True))
        return rt.stream_ops

    def test_chunked_overlap_is_race_free(self, system, calib):
        records = self.run_ledger(self.make_program(), system, calib)
        assert records, "streamed execution must populate the ledger"
        assert analyze_records(records) == []

    def test_repeated_phase_war_hazard_detected(self, system, calib):
        # Pass 2's chunk copies overwrite the staging regions pass 1's
        # kernels read, with no sync between passes: a genuine
        # write-after-read hazard in the hand-tuned overlap pattern.
        records = self.run_ledger(self.make_program(count=2), system,
                                  calib)
        assert "S301" in rules_of(analyze_records(records))

    def test_execute_program_streamed_still_runs(self, system, calib):
        result = execute_program_streamed(self.make_program(), chunks=4,
                                          system=system, calib=calib)
        assert result.wall_ns > 0
        assert result.chunks == 4
