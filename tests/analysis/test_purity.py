"""Unit tests for the D4xx determinism pass (scoping + propagation).

The corpus (``test_corpus.py``) pins per-rule detection; these tests
pin the *scoping* machinery: pure-region gating, call-graph
reachability across modules, D409 origin wiring, and the exemptions
(sleep, repr, seeded RNGs) that keep the pass quiet on legal code.
"""

import ast
from pathlib import Path

from repro.analysis.astlint import SourceModule, build_index
from repro.analysis.purity import analyze_purity


def module_from(text: str, module: str, relpath: str = "") -> SourceModule:
    text = text.strip() + "\n"
    return SourceModule(path=Path(f"/virtual/{module}.py"),
                        relpath=relpath or f"{module}.py", module=module,
                        text=text, tree=ast.parse(text),
                        lines=text.splitlines())


def run(modules, **kwargs):
    return analyze_purity(modules, build_index(modules), **kwargs)


class TestRegionScoping:
    def test_clock_outside_pure_region_is_silent(self):
        mod = module_from(
            "import time\n"
            "def progress():\n"
            "    return time.monotonic()\n", "pkg.harness.progress")
        assert run([mod], pure_roots=(), always_pure_prefixes=()) == []

    def test_same_clock_inside_always_pure_prefix_fires(self):
        mod = module_from(
            "import time\n"
            "def progress():\n"
            "    return time.monotonic()\n", "pkg.sim.progress")
        diags = run([mod], pure_roots=(),
                    always_pure_prefixes=("pkg.sim.",))
        assert [d.rule for d in diags] == ["D401"]
        assert diags[0].line == 3

    def test_reachability_pulls_function_into_pure_region(self):
        mod = module_from(
            "import os\n"
            "def helper():\n"
            "    return os.getenv('X')\n"
            "def entry():\n"
            "    return helper()\n", "pkg.entry")
        quiet = run([mod], pure_roots=(), always_pure_prefixes=())
        assert quiet == []
        loud = run([mod], pure_roots=("pkg.entry.entry",),
                   always_pure_prefixes=())
        assert sorted(d.rule for d in loud) == ["D405", "D409"]

    def test_mutable_default_fires_everywhere(self):
        mod = module_from(
            "def anywhere(x, acc=[]):\n"
            "    return acc\n", "pkg.util")
        diags = run([mod], pure_roots=(), always_pure_prefixes=())
        assert [d.rule for d in diags] == ["D406"]


class TestCrossModulePropagation:
    def make_pair(self):
        hazard = module_from(
            "import time\n"
            "def tainted():\n"
            "    return time.time()\n", "pkg.helpers",
            relpath="pkg/helpers.py")
        root = module_from(
            "from .helpers import tainted\n"
            "def simulate(x):\n"
            "    return tainted() + x\n", "pkg.engine",
            relpath="pkg/engine.py")
        return hazard, root

    def test_d409_reported_at_root_with_origin(self):
        hazard, root = self.make_pair()
        diags = run([hazard, root], pure_roots=("pkg.engine.simulate",),
                    always_pure_prefixes=())
        by_rule = {d.rule: d for d in diags}
        assert set(by_rule) == {"D401", "D409"}
        d401, d409 = by_rule["D401"], by_rule["D409"]
        assert d401.path == "pkg/helpers.py" and d401.line == 3
        assert d409.path == "pkg/engine.py" and d409.line == 2
        assert d409.origin == "pkg/helpers.py:3:D401"
        assert "simulate -> tainted" in d409.message

    def test_root_outside_call_graph_stays_clean(self):
        hazard, root = self.make_pair()
        diags = run([hazard, root], pure_roots=("pkg.engine.missing",),
                    always_pure_prefixes=())
        assert diags == []


class TestExemptions:
    def test_sleep_seeded_rng_and_repr_are_clean(self):
        mod = module_from(
            "import time\n"
            "import random\n"
            "import numpy as np\n"
            "class Thing:\n"
            "    def __repr__(self):\n"
            "        return f'<Thing {id(self):#x} {hash(self)}>'\n"
            "def simulate(seed):\n"
            "    time.sleep(0)\n"
            "    rng = np.random.default_rng(seed)\n"
            "    local = random.Random(seed)\n"
            "    return rng.random() + local.random()\n", "pkg.sim.clean")
        assert run([mod], pure_roots=(),
                   always_pure_prefixes=("pkg.sim.",)) == []

    def test_sorted_set_iteration_is_clean(self):
        mod = module_from(
            "def stable(names):\n"
            "    pool = set(names)\n"
            "    return [n for n in sorted(pool)]\n", "pkg.sim.order")
        assert run([mod], pure_roots=(),
                   always_pure_prefixes=("pkg.sim.",)) == []

    def test_d404_needs_pure_region_or_serialization(self):
        leaky = ("import json\n"
                 "def dump(names):\n"
                 "    pool = set(names)\n"
                 "    return json.dumps(list(pool))\n")
        outside = module_from("def f(names):\n"
                              "    return list(set(names))\n", "pkg.free")
        serializer = module_from(leaky, "pkg.io")
        assert run([outside], pure_roots=(),
                   always_pure_prefixes=()) == []
        diags = run([serializer], pure_roots=(), always_pure_prefixes=())
        assert [d.rule for d in diags] == ["D404"]


class TestSelfMethodEdges:
    def test_self_call_resolves_within_class(self):
        mod = module_from(
            "import time\n"
            "class Engine:\n"
            "    def _stamp(self):\n"
            "        return time.time()\n"
            "    def simulate(self):\n"
            "        return self._stamp()\n", "pkg.obj")
        diags = run([mod], pure_roots=("pkg.obj.Engine.simulate",),
                    always_pure_prefixes=())
        assert sorted(d.rule for d in diags) == ["D401", "D409"]
