"""Drive every seeded hazard snippet through the static analyzer.

Each corpus file marks its expected findings with ``# EXPECT[RULE]``
on the flagged line (or ``EXPECT_GLOBAL`` for findings anchored
outside the snippet, like manifest drift). One parameterized test per
file asserts the *exact* multiset of ``(rule, line)`` findings: every
marker detected at its line, and - just as important - zero findings
on the unmarked clean-twin lines.
"""

import importlib.util
import json
import re
import sys
from pathlib import Path

import pytest

from repro.analysis.astlint import (SOURCE_REGISTRY, build_index,
                                    load_source)
from repro.analysis.fingerprints import (check_cache_key_wiring,
                                         check_canonical_generic,
                                         check_environment_fingerprint,
                                         check_manifest,
                                         check_memo_key_classes,
                                         check_memo_wiring, collect_schema)
from repro.analysis.purity import analyze_purity
from repro.analysis.suppress import Suppressions

CORPUS = Path(__file__).parent / "corpus"
SNIPPETS = sorted(p for p in CORPUS.glob("*.py")
                  if p.name != "__init__.py")
EXPECT_RE = re.compile(r"#\s*EXPECT\[([A-Z]\d+)\]")


def expected_findings(path: Path):
    expected = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for rule in EXPECT_RE.findall(line):
            expected.append((rule, lineno))
    return sorted(expected)


def load(path: Path):
    return load_source(path, relpath=path.name,
                       module=f"corpus.{path.stem}")


def import_snippet(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"corpus_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    # register so inspect can locate class source lines (F50x anchors)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def run_snippet(path: Path, tmp_path: Path):
    """All diagnostics the analyzer produces for one corpus file."""
    source = load(path)
    name = path.stem
    if name.startswith(("d4", "a0", "suppressed")):
        index = build_index([source])
        roots = [q for q in index.functions
                 if q.rsplit(".", 1)[-1].startswith("root_")]
        findings = analyze_purity(
            [source], index, pure_roots=roots,
            always_pure_prefixes=("corpus.",))
        suppressions = Suppressions.from_modules([source])
        active, _, pragma_diags = suppressions.filter(
            findings, SOURCE_REGISTRY)
        return active + pragma_diags
    if name.startswith("f501"):
        return check_memo_wiring(source, source)
    if name.startswith("f502"):
        return (check_cache_key_wiring(source)
                + check_environment_fingerprint(source))
    if name.startswith("f503"):
        return check_canonical_generic(source)
    if name.startswith("f504"):
        module = import_snippet(path)
        _, diags = collect_schema(module.ROOTS)
        return diags
    if name.startswith("f505"):
        module = import_snippet(path)
        schema, diags = collect_schema(module.ROOTS)
        assert not diags, "drift snippet must be F504-clean"
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps(
            {"version": 1, "classes": module.PINNED}))
        return check_manifest(schema, manifest)
    if name.startswith("f506"):
        module = import_snippet(path)
        return check_memo_key_classes(module.ROOTS)
    raise AssertionError(f"corpus file {name} matches no harness branch")


@pytest.mark.parametrize("path", SNIPPETS, ids=lambda p: p.stem)
def test_snippet_findings_exact(path, tmp_path):
    diags = run_snippet(path, tmp_path)
    anchored = sorted((d.rule, d.line) for d in diags
                      if d.path == path.name)
    unanchored = [d for d in diags if d.path != path.name]

    assert anchored == expected_findings(path), (
        "expected markers and actual findings disagree:\n"
        + "\n".join(d.format() for d in diags))

    expected_global = {}
    source_text = path.read_text()
    if "EXPECT_GLOBAL" in source_text:
        expected_global = import_snippet(path).EXPECT_GLOBAL
    counts = {}
    for diag in unanchored:
        counts[diag.rule] = counts.get(diag.rule, 0) + 1
    assert counts == expected_global, (
        "findings outside the snippet:\n"
        + "\n".join(d.format() for d in unanchored))


def test_corpus_covers_every_rule():
    """Each D4xx/F5xx/A0xx rule appears in at least one snippet."""
    covered = set()
    for path in SNIPPETS:
        covered.update(rule for rule, _ in expected_findings(path))
        if "EXPECT_GLOBAL" in path.read_text():
            covered.update(import_snippet(path).EXPECT_GLOBAL)
    all_rules = {rule.id for rule in SOURCE_REGISTRY.all_rules()}
    assert covered == all_rules, (
        f"rules without a corpus snippet: {sorted(all_rules - covered)}; "
        f"unknown markers: {sorted(covered - all_rules)}")


def test_clean_twins_have_no_markers():
    """Files suffixed _clean (and the suppression exemplar) expect 0."""
    clean = [p for p in SNIPPETS
             if p.stem.endswith("_clean") or p.stem == "suppressed_clean"]
    assert clean, "corpus must contain clean twins"
    for path in clean:
        assert expected_findings(path) == [], path.name
