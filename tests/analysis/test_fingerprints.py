"""Unit tests for the F5xx fingerprint-completeness pass.

The two properties the acceptance criteria demand:

* the shipped repo is F5xx-clean (schema matches the checked-in
  manifest, all wiring present);
* *deleting* any field-to-fingerprint wiring in ``executor.py`` or
  ``phasecache.py``, or *adding* a field to any RunSpec-reachable
  dataclass, turns the pass red.

Deletion is tested by rewriting the real sources in a temp tree and
re-running the AST checks on them; addition by substituting a
synthetic ``RunSpec`` subclass (hypothesis generates the field) and
checking the live schema against the pinned manifest.
"""

import dataclasses
import json
import keyword
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.harness.executor as executor_mod
from repro.analysis.astlint import default_package_root, scan_package
from repro.analysis.fingerprints import (DEFAULT_SCHEMA_ROOTS,
                                         analyze_fingerprints,
                                         build_manifest, check_manifest,
                                         collect_schema,
                                         default_manifest_path,
                                         write_manifest)

PACKAGE_ROOT = default_package_root()
PROJECT_ROOT = PACKAGE_ROOT.parent.parent


def scan():
    return scan_package(PACKAGE_ROOT, PROJECT_ROOT)


class TestRepoIsClean:
    def test_no_findings_on_shipped_sources(self):
        assert analyze_fingerprints(scan()) == []

    def test_manifest_matches_live_schema(self):
        pinned = json.loads(default_manifest_path().read_text())
        assert pinned["classes"] == build_manifest()["classes"]

    def test_write_manifest_roundtrip(self, tmp_path):
        out = write_manifest(tmp_path / "m.json")
        schema, diags = collect_schema()
        assert diags == []
        assert check_manifest(schema, out) == []


def mutated_scan(tmp_path, relpath, pattern, replacement):
    """Copy the package, regex-rewrite one file, rescan."""
    import shutil
    target_root = tmp_path / "repro"
    shutil.copytree(PACKAGE_ROOT, target_root)
    target = target_root / relpath
    text = target.read_text()
    new = re.sub(pattern, replacement, text)
    assert new != text, f"mutation did not apply to {relpath}"
    target.write_text(new)
    return scan_package(target_root, tmp_path, package_name="repro")


WIRING_DELETIONS = [
    ("harness/executor.py",
     r'"program": program_fingerprint\(spec\),', "", "F502"),
    ("harness/executor.py",
     r'"code": CODE_VERSION,', "", "F502"),
    ("harness/executor.py",
     r'"calib": calib or default_calibration\(\),', "", "F502"),
    ("sim/phasecache.py",
     r"key = \(desc, flags, smem_carveout_bytes, resident_fraction\)",
     "key = (desc, flags, smem_carveout_bytes)", "F501"),
    ("sim/phasecache.py",
     r"key = \(desc, flags, smem_carveout_bytes, resident_fraction\)",
     "key = (desc, smem_carveout_bytes, resident_fraction)", "F501"),
]


@pytest.mark.parametrize("relpath,pattern,replacement,rule",
                         WIRING_DELETIONS,
                         ids=[f"{r[3]}-{i}" for i, r
                              in enumerate(WIRING_DELETIONS)])
def test_deleting_wiring_turns_red(tmp_path, relpath, pattern,
                                   replacement, rule):
    modules = mutated_scan(tmp_path, relpath, pattern, replacement)
    diags = analyze_fingerprints(modules)
    assert rule in {d.rule for d in diags}, [d.format() for d in diags]
    assert all(d.severity.value == "error" for d in diags)


def test_dropping_fields_call_in_canonical_is_f503(tmp_path):
    modules = mutated_scan(
        tmp_path, "harness/executor.py",
        r"for f in dataclasses\.fields\(obj\)",
        "for f in []")
    diags = analyze_fingerprints(modules)
    assert "F503" in {d.rule for d in diags}, [d.format() for d in diags]


# ----------------------------------------------------------------------
# Synthetic-field injection (hypothesis)
# ----------------------------------------------------------------------
_EXISTING = {f.name for f in dataclasses.fields(executor_mod.RunSpec)}
_identifier = st.from_regex(r"[a-z][a-z0-9_]{0,12}", fullmatch=True).filter(
    lambda s: s not in _EXISTING and not keyword.iskeyword(s))


@settings(max_examples=25, deadline=None)
@given(name=_identifier,
       typ=st.sampled_from([int, float, str, bool]))
def test_injected_runspec_field_trips_f505(name, typ):
    synthetic = dataclasses.make_dataclass(
        "RunSpec", [(name, typ, dataclasses.field(default=typ()))],
        bases=(executor_mod.RunSpec,), frozen=True)
    # Make it resolve to the same schema key as the real class, as an
    # in-place edit of executor.py would.
    synthetic.__module__ = executor_mod.RunSpec.__module__
    synthetic.__qualname__ = executor_mod.RunSpec.__qualname__
    original = executor_mod.RunSpec
    try:
        executor_mod.RunSpec = synthetic
        schema, field_diags = collect_schema(DEFAULT_SCHEMA_ROOTS)
        assert field_diags == []
        drift = check_manifest(schema, default_manifest_path())
    finally:
        executor_mod.RunSpec = original
    assert [d.rule for d in drift] == ["F505"]
    assert name in drift[0].message
    assert "RunSpec" in drift[0].message


def test_retyping_a_reachable_field_trips_f505():
    schema, _ = collect_schema(DEFAULT_SCHEMA_ROOTS)
    key = f"{executor_mod.RunSpec.__module__}.RunSpec"
    mutated = {k: dict(v) for k, v in schema.items()}
    mutated[key]["base_seed"] = "str"
    drift = check_manifest(mutated, default_manifest_path())
    assert [d.rule for d in drift] == ["F505"]
    assert "retyped" in drift[0].message


def test_manifest_missing_or_unreadable(tmp_path):
    schema, _ = collect_schema(DEFAULT_SCHEMA_ROOTS)
    missing = check_manifest(schema, tmp_path / "absent.json")
    assert [d.rule for d in missing] == ["F505"]
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    unreadable = check_manifest(schema, bad)
    assert [d.rule for d in unreadable] == ["F505"]
