"""Runner entry points: workload- and registry-level lint sweeps."""

import pytest

from repro.analysis import lint_registry, lint_workload
from repro.core.configs import ALL_MODES, TransferMode
from repro.workloads.registry import ALL_NAMES, get_workload
from repro.workloads.sizes import SizeClass


class TestLintWorkload:
    def test_single_workload_all_modes(self):
        report = lint_workload(get_workload("vector_seq"),
                               SizeClass.SUPER)
        assert report.contexts == len(ALL_MODES)
        assert not report.has_errors

    def test_mode_subset(self):
        report = lint_workload(get_workload("gemm"), SizeClass.SUPER,
                               modes=(TransferMode.ASYNC,))
        assert report.contexts == 1


class TestLintRegistry:
    def test_defaults_cover_every_workload(self):
        report = lint_registry()
        assert report.contexts == len(ALL_NAMES) * len(ALL_MODES)

    def test_shipped_registry_has_no_errors_or_warnings(self):
        """Registration smoke: every shipped (workload, size, mode)
        combination must lint without errors or warnings - the
        acceptance contract behind ``repro lint``."""
        report = lint_registry(sizes=list(SizeClass))
        counts = report.counts()
        offenders = [d.format() for d in report.errors + report.warnings]
        assert counts["error"] == 0, offenders
        assert counts["warning"] == 0, offenders

    def test_unsupported_sizes_skipped(self):
        # gemm at mega needs 48 GiB of explicit allocation: the
        # workload declines the size, so the sweep must skip it
        # rather than report a P201 error.
        report = lint_registry(names=["gemm"], sizes=[SizeClass.MEGA])
        assert report.contexts == 0

    def test_name_subset(self):
        report = lint_registry(names=["saxpy", "hotspot"])
        assert report.contexts == 2 * len(ALL_MODES)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            lint_registry(names=["not_a_workload"])
