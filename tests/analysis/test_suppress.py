"""Unit tests for pragmas, the origin cascade, and the baseline."""

import ast
import json
from pathlib import Path

from repro.analysis.astlint import SOURCE_REGISTRY, SourceModule
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import DEFAULT_REGISTRY
from repro.analysis.suppress import (Baseline, Pragma, Suppressions,
                                     baseline_entry, scan_pragmas,
                                     workload_source)


def module_from(text: str, module: str = "pkg.mod",
                relpath: str = "pkg/mod.py") -> SourceModule:
    text = text.strip() + "\n"
    return SourceModule(path=Path(f"/virtual/{relpath}"), relpath=relpath,
                        module=module, text=text, tree=ast.parse(text),
                        lines=text.splitlines())


def diag(rule="D401", path="pkg/mod.py", line=1, **kwargs):
    return Diagnostic(rule=rule, severity=Severity.ERROR, message="m",
                      path=path, line=line, **kwargs)


class TestPragmaParsing:
    def test_trailing_pragma_targets_its_own_line(self):
        pragmas = scan_pragmas(
            Path("x.py"), "x.py",
            ["import os",
             "v = os.getenv('A')  # repro: allow[D405] -- worker env"])
        assert len(pragmas) == 1
        assert pragmas[0].lineno == 2
        assert pragmas[0].rules == ("D405",)
        assert pragmas[0].justification == "worker env"

    def test_comment_block_pragma_targets_next_code_line(self):
        pragmas = scan_pragmas(
            Path("x.py"), "x.py",
            ["# repro: allow[D401] -- a justification that",
             "# wraps across two comment lines",
             "value = 1"])
        assert pragmas[0].lineno == 3

    def test_docstring_mention_is_not_a_pragma(self):
        pragmas = scan_pragmas(
            Path("x.py"), "x.py",
            ['"""Write `# repro: allow[RULE] -- why` to suppress."""',
             "value = 1"])
        assert pragmas == []

    def test_multiple_rules_one_pragma(self):
        pragmas = scan_pragmas(
            Path("x.py"), "x.py",
            ["x = 1  # repro: allow[D401, D403] -- both intended"])
        assert pragmas[0].rules == ("D401", "D403")

    def test_problems(self):
        bad = Pragma(path=Path("x.py"), relpath="x.py", lineno=1,
                     kind="allow", rules=("D999",), justification="")
        assert len(bad.problems()) == 2
        good = Pragma(path=Path("x.py"), relpath="x.py", lineno=1,
                      kind="allow", rules=("D401", "K101"),
                      justification="spans both families")
        assert good.problems() == []


class TestFiltering:
    def test_line_pragma_suppresses_and_marks_used(self):
        mod = module_from("import os\n"
                          "v = os.getenv('A')  # repro: allow[D405] -- ok")
        sup = Suppressions.from_modules([mod])
        active, suppressed, diags = sup.filter(
            [diag("D405", line=2)], SOURCE_REGISTRY)
        assert active == [] and len(suppressed) == 1
        assert diags == []  # used pragma: no A002

    def test_file_pragma_covers_whole_file(self):
        mod = module_from("# repro: allow-file[D401] -- timing module\n"
                          "import time\n"
                          "a = time.time()\n"
                          "b = time.time()")
        sup = Suppressions.from_modules([mod])
        active, suppressed, _ = sup.filter(
            [diag("D401", line=3), diag("D401", line=4)], SOURCE_REGISTRY)
        assert active == [] and len(suppressed) == 2

    def test_origin_cascade_suppresses_propagation(self):
        mod = module_from("import time\n"
                          "t = time.time()  # repro: allow[D401] -- why")
        sup = Suppressions.from_modules([mod])
        propagated = diag("D409", path="other/root.py", line=10,
                          origin="pkg/mod.py:2:D401")
        active, suppressed, _ = sup.filter(
            [diag("D401", line=2), propagated], SOURCE_REGISTRY)
        assert active == []
        assert {d.rule for d in suppressed} == {"D401", "D409"}

    def test_invalid_pragma_suppresses_nothing_and_reports_a001(self):
        mod = module_from("import time\n"
                          "t = time.time()  # repro: allow[D401]")
        sup = Suppressions.from_modules([mod])
        active, suppressed, diags = sup.filter(
            [diag("D401", line=2)], SOURCE_REGISTRY)
        assert len(active) == 1 and suppressed == []
        assert [d.rule for d in diags] == ["A001"]

    def test_stale_pragma_reports_a002(self):
        mod = module_from("x = 1  # repro: allow[D401] -- stale")
        _, _, diags = Suppressions.from_modules([mod]).filter(
            [], SOURCE_REGISTRY)
        assert [d.rule for d in diags] == ["A002"]
        assert diags[0].severity is Severity.WARNING

    def test_a002_scoped_to_the_running_family(self):
        # A model-rule pragma is not stale just because the *static*
        # run produced no model findings.
        mod = module_from("# repro: allow-file[K102] -- known spill")
        _, _, diags = Suppressions.from_modules([mod]).filter(
            [], SOURCE_REGISTRY)
        assert diags == []
        _, _, diags = Suppressions.from_modules([mod]).filter(
            [], DEFAULT_REGISTRY)
        assert [d.rule for d in diags] == ["A002"]


class TestWorkloadMapping:
    def test_workload_source_resolves(self):
        src = workload_source("vector_seq")
        assert src is not None and src.name.endswith(".py")
        assert workload_source("no_such_workload") is None

    def test_model_finding_suppressed_by_file_pragma(self):
        src = workload_source("vector_seq")
        text = src.read_text()
        mod = SourceModule(path=src, relpath="whatever.py",
                           module="pkg.w", text=text,
                           tree=ast.parse(text),
                           lines=["# repro: allow-file[K102] -- probe"])
        sup = Suppressions.from_modules([mod])
        model = Diagnostic(rule="K102", severity=Severity.WARNING,
                           message="m", workload="vector_seq",
                           mode="explicit_sync")
        active, suppressed, _ = sup.filter([model], DEFAULT_REGISTRY)
        assert active == [] and len(suppressed) == 1


class TestBaseline:
    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert baseline.entries == []
        assert not baseline.matches(diag())

    def test_version_mismatch_raises(self, tmp_path):
        target = tmp_path / "b.json"
        target.write_text('{"version": 99, "entries": []}')
        try:
            Baseline.load(target)
        except ValueError as error:
            assert "version" in str(error)
        else:
            raise AssertionError("expected ValueError")

    def test_content_hash_pins_finding_to_its_line(self, tmp_path):
        src = tmp_path / "pkg"
        src.mkdir()
        (src / "mod.py").write_text("import time\nt = time.time()\n")
        finding = diag("D401", path="pkg/mod.py", line=2)
        baseline = Baseline.from_findings([finding], tmp_path)
        out = tmp_path / "baseline.json"
        baseline.save(out)

        reloaded = Baseline.load(out, project_root=tmp_path)
        assert reloaded.matches(finding)
        # editing the flagged line un-grandfathers the finding
        (src / "mod.py").write_text("import time\nt = time.time() + 1\n")
        fresh = Baseline.load(out, project_root=tmp_path)
        assert not fresh.matches(finding)

    def test_model_findings_match_by_context(self, tmp_path):
        model = Diagnostic(rule="K102", severity=Severity.WARNING,
                           message="m", workload="gemm", mode="uvm",
                           location="phase[0]")
        baseline = Baseline.from_findings([model], tmp_path)
        assert baseline.matches(model)
        other = Diagnostic(rule="K102", severity=Severity.WARNING,
                           message="m", workload="gemm", mode="uvm",
                           location="phase[1]")
        active, grandfathered = baseline.filter([model, other])
        assert grandfathered == [model] and active == [other]

    def test_entry_shapes(self):
        static = baseline_entry(diag(), "some line")
        assert set(static) == {"rule", "path", "content"}
        model = baseline_entry(Diagnostic(
            rule="K101", severity=Severity.ERROR, message="m",
            workload="w", mode="m"))
        assert set(model) == {"rule", "workload", "mode", "location"}

    def test_save_is_deterministic(self, tmp_path):
        findings = [diag("D401"), diag("D403", line=2)]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        Baseline.from_findings(findings, tmp_path).save(a)
        Baseline.from_findings(list(reversed(findings)),
                               tmp_path).save(b)
        assert a.read_text() == b.read_text()
        assert json.loads(a.read_text())["version"] == 1
