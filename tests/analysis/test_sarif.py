"""Unit tests for the SARIF 2.1.0 emitter."""

import json

from repro.analysis.astlint import SOURCE_REGISTRY
from repro.analysis.diagnostics import (Diagnostic, LintReport, Severity)
from repro.analysis.rules import DEFAULT_REGISTRY
from repro.analysis.sarif import to_sarif


def source_diag(rule="D401", severity=Severity.ERROR):
    return Diagnostic(rule=rule, severity=severity, message="msg",
                      location="pkg.mod.func", path="src/pkg/mod.py",
                      line=7, fix_hint="do better")


def model_diag():
    return Diagnostic(rule="K102", severity=Severity.WARNING,
                      message="spill", workload="gemm", mode="uvm",
                      location="phase[0]/kernel:gemm")


def render(report):
    return json.loads(to_sarif(report,
                               [DEFAULT_REGISTRY, SOURCE_REGISTRY]))


class TestStructure:
    def test_schema_and_version(self):
        doc = render(LintReport())
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        assert len(doc["runs"]) == 1

    def test_driver_carries_both_rule_families(self):
        doc = render(LintReport())
        ids = {r["id"] for r in
               doc["runs"][0]["tool"]["driver"]["rules"]}
        assert {"K101", "P201", "S301", "D401", "F502", "A001"} <= ids

    def test_rule_metadata(self):
        doc = render(LintReport())
        by_id = {r["id"]: r for r in
                 doc["runs"][0]["tool"]["driver"]["rules"]}
        d401 = by_id["D401"]
        assert d401["name"] == "wall-clock-call"
        assert d401["defaultConfiguration"]["level"] == "error"
        assert by_id["S303"]["defaultConfiguration"]["level"] == "warning"


class TestResults:
    def test_source_finding_has_physical_location(self):
        doc = render(LintReport([source_diag()]))
        result = doc["runs"][0]["results"][0]
        assert result["ruleId"] == "D401"
        assert result["level"] == "error"
        physical = result["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "src/pkg/mod.py"
        assert physical["region"]["startLine"] == 7
        assert "do better" in result["message"]["text"]

    def test_model_finding_has_logical_location(self):
        doc = render(LintReport([model_diag()]))
        result = doc["runs"][0]["results"][0]
        assert result["level"] == "warning"
        logical = result["locations"][0]["logicalLocations"][0]
        assert logical["fullyQualifiedName"] == \
            "gemm:uvm/phase[0]/kernel:gemm"
        assert "physicalLocation" not in result["locations"][0]

    def test_info_maps_to_note(self):
        info = Diagnostic(rule="P203", severity=Severity.INFO,
                          message="m", workload="w", mode="m")
        doc = render(LintReport([info]))
        assert doc["runs"][0]["results"][0]["level"] == "note"

    def test_suppressed_and_baselined_are_marked(self):
        report = LintReport()
        report.suppressed = [source_diag()]
        report.baselined = [model_diag()]
        results = render(report)["runs"][0]["results"]
        kinds = sorted(r["suppressions"][0]["kind"] for r in results)
        assert kinds == ["external", "inSource"]

    def test_rule_index_consistent(self):
        doc = render(LintReport([source_diag(), model_diag()]))
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
