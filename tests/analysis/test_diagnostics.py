"""Diagnostics framework tests: records, reports, and the registry."""

import json

import pytest

from repro.analysis.diagnostics import (Diagnostic, LintReport, Rule,
                                        RuleRegistry, Severity)


def make_diag(rule="T100", severity=Severity.ERROR, **overrides):
    base = dict(rule=rule, severity=severity, message="boom",
                location="phase[0]/kernel:k", fix_hint="fix it",
                workload="w", mode="standard")
    base.update(overrides)
    return Diagnostic(**base)


class TestSeverity:
    def test_rank_ordering(self):
        assert Severity.ERROR.rank > Severity.WARNING.rank > \
            Severity.INFO.rank

    @pytest.mark.parametrize("label,expected", [
        ("error", Severity.ERROR),
        ("WARNING", Severity.WARNING),
        ("Info", Severity.INFO),
    ])
    def test_from_label(self, label, expected):
        assert Severity.from_label(label) is expected

    def test_from_label_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.from_label("fatal")


class TestDiagnostic:
    def test_format_is_one_line(self):
        line = make_diag().format()
        assert "\n" not in line
        assert "T100" in line
        assert "w:standard" in line
        assert "phase[0]/kernel:k" in line
        assert "[fix: fix it]" in line

    def test_to_dict_round_trips_severity(self):
        payload = make_diag(severity=Severity.WARNING).to_dict()
        assert payload["severity"] == "warning"
        assert payload["rule"] == "T100"


class TestLintReport:
    def test_counts_and_has_errors(self):
        report = LintReport([
            make_diag(severity=Severity.ERROR),
            make_diag(rule="T101", severity=Severity.WARNING),
            make_diag(rule="T102", severity=Severity.INFO),
        ])
        assert report.counts() == {"error": 1, "warning": 1, "info": 1}
        assert report.has_errors
        assert len(report) == 3

    def test_sorted_puts_errors_first(self):
        report = LintReport([
            make_diag(rule="T102", severity=Severity.INFO),
            make_diag(rule="T100", severity=Severity.ERROR),
        ])
        assert [d.rule for d in report.sorted()] == ["T100", "T102"]

    def test_merge_accumulates_contexts(self):
        a = LintReport([make_diag()])
        a.contexts = 2
        b = LintReport([make_diag(rule="T101")])
        b.contexts = 3
        a.merge(b)
        assert a.contexts == 5
        assert len(a) == 2

    def test_render_text_min_severity_filters(self):
        report = LintReport([
            make_diag(severity=Severity.ERROR),
            make_diag(rule="T102", severity=Severity.INFO),
        ])
        text = report.render_text(min_severity=Severity.WARNING)
        assert "T100" in text
        assert "T102" not in text
        # The summary still counts everything.
        assert "1 info(s)" in text

    def test_render_text_clean(self):
        report = LintReport()
        report.contexts = 4
        text = report.render_text()
        assert text.startswith("clean:")
        assert "4 lint context(s)" in text

    def test_json_contract(self):
        report = LintReport([make_diag()])
        report.contexts = 1
        payload = json.loads(report.to_json())
        assert payload["version"] == 1
        assert payload["contexts"] == 1
        assert payload["counts"]["error"] == 1
        assert payload["diagnostics"][0]["rule"] == "T100"


class TestRuleRegistry:
    def make_registry(self):
        registry = RuleRegistry()

        @registry.rule("T100", "test-rule", Severity.WARNING,
                       "a test rule", threshold=10)
        def check(ctx, rule, config):
            yield rule.diag("hit", location="here")

        registry.register(Rule("T200", "catalog-only", Severity.ERROR,
                               "no check"))
        return registry

    def test_duplicate_id_rejected(self):
        registry = self.make_registry()
        with pytest.raises(ValueError, match="duplicate"):
            registry.register(Rule("T100", "again", Severity.INFO, ""))

    def test_unknown_rule_rejected(self):
        registry = self.make_registry()
        with pytest.raises(KeyError, match="unknown rule"):
            registry.get("T999")

    def test_disable_enable(self):
        registry = self.make_registry()
        assert registry.is_enabled("T100")
        registry.disable("T100")
        assert not registry.is_enabled("T100")
        assert "T100" not in [r.id for r in registry.enabled_rules()]
        registry.enable("T100")
        assert registry.is_enabled("T100")

    def test_configure_merges_defaults(self):
        registry = self.make_registry()
        assert registry.config_for("T100") == {"threshold": 10}
        registry.configure("T100", threshold=99, extra=True)
        assert registry.config_for("T100") == {"threshold": 99,
                                               "extra": True}

    def test_severity_override(self):
        registry = self.make_registry()
        assert registry.effective_rule("T100").severity is Severity.WARNING
        registry.configure("T100", severity="error")
        assert registry.effective_rule("T100").severity is Severity.ERROR
        # The registered rule itself is untouched.
        assert registry.get("T100").severity is Severity.WARNING

    def test_catalog_lists_every_rule(self):
        registry = self.make_registry()
        registry.disable("T200")
        catalog = registry.catalog()
        assert "T100" in catalog
        assert "T200" in catalog
        assert "(disabled)" in catalog

    def test_rule_diag_carries_identity(self):
        registry = self.make_registry()
        rule = registry.get("T100")
        diag = rule.diag("msg", location="loc", fix_hint="hint")
        assert diag.rule == "T100"
        assert diag.severity is Severity.WARNING
        # Severity can be remapped per finding (P201's managed case).
        assert rule.diag("msg", severity=Severity.INFO).severity \
            is Severity.INFO
