"""Clean twin of f503: canonical() enumerates dataclasses.fields()."""
import dataclasses


def canonical(spec):
    if dataclasses.is_dataclass(spec):
        return {f.name: canonical(getattr(spec, f.name))
                for f in dataclasses.fields(spec)}
    return spec
