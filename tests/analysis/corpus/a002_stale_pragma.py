"""A002: a valid pragma that suppressed nothing is stale."""


def root_no_hazard_here(x):
    return x + 1  # repro: allow[D401] -- left over from a refactor  # EXPECT[A002]
