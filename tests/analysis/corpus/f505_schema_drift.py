"""F505: the reachable field schema drifted from the pinned manifest.

``PINNED`` is the manifest as it was checked in *before* this class
grew ``new_knob`` and retyped ``size`` - exactly the edit F505 exists
to catch. The harness writes ``PINNED`` to a temporary manifest and
checks the live schema against it.
"""
from dataclasses import dataclass


@dataclass(frozen=True)
class DriftSpec:
    name: str
    size: float          # was pinned as int
    new_knob: int = 0    # not pinned at all


ROOTS = (DriftSpec,)

#: the stale manifest "classes" section (schema of a previous version)
PINNED = {
    f"{DriftSpec.__module__}.DriftSpec": {
        "name": "str",
        "size": "int",
    },
}

#: number of F505 findings the drift above must produce
EXPECT_GLOBAL = {"F505": 1}
