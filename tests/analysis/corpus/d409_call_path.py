"""D409: a pure root transitively reaching a hazard is tainted.

The hazard is reported twice: at its own site (D401) and at the
declared pure root (D409), so both ends of the call chain are visible.
"""
import time


def helper_reads_clock():
    return time.time()  # EXPECT[D401]


def middle(x):
    return helper_reads_clock() + x


def root_simulate(x):  # EXPECT[D409]
    return middle(x) * 2.0


def root_clean(x):
    # clean twin: a root whose whole call graph is hazard-free.
    return ok_helper(x) + 1


def ok_helper(x):
    return x * x
