"""F501: every parameter of the memoized function must feed the key.

``resident_fraction`` reaches the memo method but not its key tuple;
``smem`` never even reaches the method. ``system``/``calib`` are
covered by the ``matches()`` environment binding - the clean twin.
"""


def simulate_kernel(desc, flags, system, calib, smem, resident_fraction):
    return (desc, flags, system, calib, smem, resident_fraction)


class PhaseMemo:
    def __init__(self, system, calib):
        self._system = system
        self._calib = calib
        self._table = {}

    def matches(self, system, calib):
        return system == self._system and calib == self._calib

    def simulate(self, desc, flags, system, calib, resident_fraction):  # EXPECT[F501]
        if not self.matches(system, calib):
            return simulate_kernel(desc, flags, system, calib, 0,
                                   resident_fraction)
        key = (desc, flags)  # EXPECT[F501]
        if key not in self._table:
            self._table[key] = simulate_kernel(
                desc, flags, system, calib, 0, resident_fraction)
        return self._table[key]
