"""F502: the cache-key payload must wire every required component.

The payload below lost its ``program`` entry entirely and its
``environment`` entry no longer calls the fingerprint helper - both
ways results computed under different inputs collide on one key.
"""
import hashlib
import json

CODE_VERSION = "corpus-v1"


def canonical(spec):
    return repr(spec)


def program_fingerprint(spec):
    return "prog:" + canonical(spec)


def environment_fingerprint(system=None, calib=None):  # EXPECT[F502]
    return hashlib.sha256(json.dumps({
        "system": system,
    }).encode()).hexdigest()


def cache_key(spec):  # EXPECT[F502]
    payload = {
        "code": CODE_VERSION,
        "spec": canonical(spec),
        "environment": "static-environment",  # EXPECT[F502]
    }
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()
