"""F506: memo-key classes must be frozen dataclasses of hashables."""
from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass  # EXPECT[F506]
class MutableKey:
    # hazard: not frozen - mutating a key aliases a stale memo entry.
    name: str


@dataclass(frozen=True)  # EXPECT[F506]
class ListKey:
    # hazard: a list field makes the whole key unhashable.
    name: str
    stages: List[int] = field(default_factory=list)


class NotADataclass:  # EXPECT[F506]
    # hazard: plain classes compare by identity, not structure.
    def __init__(self, name):
        self.name = name


@dataclass(frozen=True)
class CleanKey:
    # clean twin: frozen, tuple-valued, hashable throughout.
    name: str
    stages: Tuple[int, ...] = ()


ROOTS = (MutableKey, ListKey, NotADataclass, CleanKey)
