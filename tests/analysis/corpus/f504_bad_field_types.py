"""F504: fields reachable from a schema root that canonical() cannot
serialize deterministically (set order is arbitrary; an opaque object
has no stable bytes).

Imported (not just parsed) by the harness: the F504/F505/F506 checks
reflect over real classes. ``ROOTS`` is the harness convention for
the schema roots of this snippet.
"""
from dataclasses import dataclass, field
from typing import Optional, Set, Tuple


@dataclass(frozen=True)  # EXPECT[F504]
class BadSpec:
    name: str
    tags: Set[str] = field(default_factory=set)


@dataclass(frozen=True)  # EXPECT[F504]
class OpaqueSpec:
    name: str
    callback: object = None


@dataclass(frozen=True)
class CleanSpec:
    # clean twin: primitives, tuples and optionals all canonicalize.
    name: str
    sizes: Tuple[int, ...] = ()
    note: Optional[str] = None


ROOTS = (BadSpec, OpaqueSpec, CleanSpec)
