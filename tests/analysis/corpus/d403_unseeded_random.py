"""D403: unseeded / process-global randomness breaks bit-identity."""
import random

import numpy as np


def root_jittered(values):
    noise = random.random()  # EXPECT[D403]
    legacy = np.random.rand(3)  # EXPECT[D403]
    rng = np.random.default_rng()  # EXPECT[D403]
    return noise, legacy, rng.random(), values


def ok_seeded(seed, values):
    # clean twins: explicit seeds make every rerun identical.
    rng = np.random.default_rng(seed)
    local = random.Random(seed)
    return rng.random(), local.random(), values
