"""Seeded hazard corpus for the ``repro lint --static`` analyzer.

Each snippet is one minimal reproduction of a D4xx/F5xx/A0xx rule
(hazard lines carry an ``# EXPECT[RULE]`` marker) together with its
*clean twin* - the closest non-hazardous spelling, unmarked, proving
the rule does not over-trigger. ``test_corpus.py`` asserts the exact
(rule, line) set per file: every marker detected, nothing else.

These files are corpus *data*, not tests - pytest does not collect
them (no ``test_`` prefix) and they are never imported at run time
except by the harness (the ``f50x_*`` reflection snippets).
"""
