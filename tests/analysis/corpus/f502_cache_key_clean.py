"""Clean twin of f502_cache_key: all four components wired."""
import hashlib
import json

CODE_VERSION = "corpus-v1"


def canonical(spec):
    return repr(spec)


def program_fingerprint(spec):
    return "prog:" + canonical(spec)


def environment_fingerprint(system=None, calib=None):
    return hashlib.sha256(json.dumps({
        "system": system,
        "calib": calib,
    }).encode()).hexdigest()


def cache_key(spec, env_fingerprint=""):
    payload = {
        "code": CODE_VERSION,
        "spec": canonical(spec),
        "program": program_fingerprint(spec),
        "environment": env_fingerprint,
    }
    return hashlib.sha256(json.dumps(payload).encode()).hexdigest()
