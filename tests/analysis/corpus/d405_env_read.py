"""D405: environment reads are invisible to every cache key."""
import os


def root_env_tuned(value):
    scale = os.getenv("REPRO_SCALE", "1")  # EXPECT[D405]
    raw = os.environ["HOME"]  # EXPECT[D405]
    debug = os.environ.get("DEBUG")  # EXPECT[D405]
    return value, scale, raw, debug


def ok_configuration_passed_in(value, scale):
    # clean twin: configuration arrives as an argument the cache
    # key can see.
    return value * scale
