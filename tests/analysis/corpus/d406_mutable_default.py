"""D406: mutable defaults accumulate state across calls."""


def root_accumulate(item, acc=[]):  # EXPECT[D406]
    acc.append(item)
    return acc


def root_keyed(item, *, index={}):  # EXPECT[D406]
    index[item] = True
    return index


def ok_fresh_default(item, acc=None):
    # clean twin: the None idiom builds a fresh list per call.
    if acc is None:
        acc = []
    acc.append(item)
    return acc
