"""Clean twin for the pragma machinery: a justified pragma silences
the hazard (and its D409 propagation) without any active finding."""
import time


def helper_intentional_clock():
    # repro: allow[D401] -- corpus exemplar: measured wall time is the
    # whole point of this helper and never feeds a cache key.
    return time.time()


def root_wrapper():
    return helper_intentional_clock()
