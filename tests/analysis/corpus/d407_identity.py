"""D407: id() is per-process identity; it must never reach a key."""


class Node:
    def __init__(self, payload):
        self.payload = payload

    def cache_token(self):
        return id(self)  # EXPECT[D407]

    def __repr__(self):
        # clean twin: id() inside repr is debugging output, exempt.
        return f"<Node {id(self):#x}>"


def ok_structural_key(node):
    return ("node", node.payload)
