"""F503: a hand-enumerated canonical() drops newly added fields."""


def canonical(spec):  # EXPECT[F503]
    # Hazard: listing fields by hand; a new RunSpec field would be
    # silently absent from every fingerprint.
    return {
        "workload": spec.workload,
        "size": spec.size,
        "mode": spec.mode,
    }
