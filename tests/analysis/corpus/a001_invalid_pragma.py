"""A001: an invalid pragma suppresses nothing and is itself an error."""
import time


def root_unknown_rule():
    return time.time()  # repro: allow[D999] -- no such rule  # EXPECT[A001]  # EXPECT[D401]


def root_missing_justification():
    return time.time()  # repro: allow[D401]  # EXPECT[A001]  # EXPECT[D401]
