"""D402: datetime.now()/today() timestamps leak into results."""
import datetime
from datetime import datetime as dt


def root_stamped_record():
    stamp = datetime.datetime.now()  # EXPECT[D402]
    day = dt.today()  # EXPECT[D402]
    return stamp, day


def ok_timestamp_passed_in(stamp):
    # clean twin: the timestamp is an explicit input.
    return stamp.isoformat()


def ok_fixed_date():
    return datetime.date(2024, 1, 1)
