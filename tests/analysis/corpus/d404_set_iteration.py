"""D404: set iteration order is arbitrary and must not escape."""
import json


def root_serialize_members(members):
    pool = set(members)
    for member in pool:  # EXPECT[D404]
        json.dumps(member)
    ordered = list({1, 2, 3})  # EXPECT[D404]
    joined = ",".join({"a", "b"})  # EXPECT[D404]
    squares = [m * m for m in pool]  # EXPECT[D404]
    return ordered, joined, squares


def ok_sorted_before_escape(members):
    # clean twin: sorted() pins one order before anything escapes.
    pool = set(members)
    ordered = sorted(pool)
    joined = ",".join(sorted({"a", "b"}))
    membership = 3 in pool
    return ordered, joined, membership
