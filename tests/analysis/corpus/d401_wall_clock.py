"""D401: wall-clock reads make reruns observe different values."""
import time


def root_timestamped_result():
    started = time.time()  # EXPECT[D401]
    tick = time.perf_counter()  # EXPECT[D401]
    return started + tick


def ok_duration_passed_in(duration_s):
    # clean twin: the caller measures; the pure code only computes.
    return duration_s * 2.0


def ok_sleep_is_not_a_clock():
    # sleeping reads no clock *into the result*; deliberately exempt.
    time.sleep(0)
    return 1
