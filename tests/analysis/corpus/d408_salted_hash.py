"""D408: built-in hash() is salted per process (PYTHONHASHSEED)."""
import hashlib


def root_bucket_for(name, buckets):
    return hash(name) % buckets  # EXPECT[D408]


def ok_stable_digest(name, buckets):
    # clean twin: a cryptographic digest is process-independent.
    digest = hashlib.sha256(name.encode()).hexdigest()
    return int(digest, 16) % buckets
