"""Clean twin of f501_memo_key: every parameter is keyed or bound."""


def simulate_kernel(desc, flags, system, calib, resident_fraction):
    return (desc, flags, system, calib, resident_fraction)


class PhaseMemo:
    def __init__(self, system, calib):
        self._system = system
        self._calib = calib
        self._table = {}

    def matches(self, system, calib):
        return system == self._system and calib == self._calib

    def simulate(self, desc, flags, system, calib, resident_fraction):
        if not self.matches(system, calib):
            return simulate_kernel(desc, flags, system, calib,
                                   resident_fraction)
        key = (desc, flags, resident_fraction)
        if key not in self._table:
            self._table[key] = simulate_kernel(desc, flags, system,
                                               calib, resident_fraction)
        return self._table[key]
