"""CLI surface of the fabric: ``repro fabric run|worker|status`` and
``repro sweep --compact-journal``."""

import json

import pytest

from repro.cli import main
from repro.fabric import FabricMeta, FabricRoot, compile_grid
from repro.harness.executor import ResultCache, SweepExecutor, expand_grid
from repro.harness.resilience import SweepJournal
from repro.harness.store import run_to_record


def run_cli(capsys, *argv, expect=0):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == expect, captured.out + captured.err
    return captured.out


class TestFabricRun:
    def test_run_completes_and_reports(self, capsys, tmp_path):
        root = tmp_path / "fab"
        out = run_cli(capsys, "fabric", "run", "vector_seq",
                      "--sizes", "small", "--iterations", "2",
                      "--root", str(root), "--workers", "2",
                      "--lease", "2.0")
        assert "[fabric]" in out
        assert "COMPLETE" in out
        assert "workers" in out
        fabric = FabricRoot(root)
        events = fabric.journal().events()
        commits = [e for e in events if e["event"] == "commit"]
        assert len(commits) == fabric.load_dag().run_count

    def test_run_matches_serial_sweep(self, capsys, tmp_path):
        specs = expand_grid(["vector_seq"], ["small"], iterations=2)
        run_cli(capsys, "fabric", "run", "vector_seq",
                "--sizes", "small", "--iterations", "2",
                "--root", str(tmp_path / "fab"), "--workers", "2")
        fabric = FabricRoot(tmp_path / "fab")
        cache = fabric.cache()
        serial = SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "ref"),
                               engine="fast").run_outcomes(specs)
        for outcome in serial:
            entry = json.loads(cache.path_for(outcome.key).read_text())
            assert entry == run_to_record(outcome.result,
                                          with_counters=True)

    def test_run_rejects_unknown_workload(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fabric", "run", "banana",
                  "--root", str(tmp_path / "fab")])

    def test_structure_flag_validated(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fabric", "run", "vector_seq", "--root",
                  str(tmp_path / "fab"), "--structure", "banana"])


class TestFabricWorkerStatus:
    def fabric(self, tmp_path):
        specs = expand_grid(["vector_seq"], ["small"], iterations=2)
        return FabricRoot.init(
            tmp_path / "fab", compile_grid(specs),
            meta=FabricMeta(engine="fast", lease_s=30.0))

    def test_worker_command_drains_root(self, capsys, tmp_path):
        fabric = self.fabric(tmp_path)
        out = run_cli(capsys, "fabric", "worker",
                      "--root", str(fabric.root), "--id", "cli-w1")
        assert "committed" in out
        status = run_cli(capsys, "fabric", "status",
                         "--root", str(fabric.root))
        assert "COMPLETE" in status
        assert "committed" in status

    def test_status_on_untouched_root(self, capsys, tmp_path):
        fabric = self.fabric(tmp_path)
        out = run_cli(capsys, "fabric", "status",
                      "--root", str(fabric.root))
        assert "ready" in out
        assert "0/" in out.replace(" ", "")

    def test_status_without_root_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fabric", "status", "--root",
                  str(tmp_path / "missing")])

    def test_worker_max_nodes(self, capsys, tmp_path):
        fabric = self.fabric(tmp_path)
        run_cli(capsys, "fabric", "worker", "--root", str(fabric.root),
                "--id", "w1", "--max-nodes", "1")
        status = run_cli(capsys, "fabric", "status",
                         "--root", str(fabric.root))
        assert "1/" in status.replace(" ", "")


class TestCompactJournalCLI:
    def test_compact_shrinks_and_preserves_resume_view(self, capsys,
                                                       tmp_path,
                                                       monkeypatch):
        cache_root = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_root))
        run_cli(capsys, "sweep", "vector_seq", "--sizes", "small",
                "--iterations", "2")
        journal = SweepJournal.beside(cache_root)
        # Bloat the journal with dead fabric chatter behind a commit.
        journal.append_event("commit", node=0, worker="w1", token=1,
                             runtime_s=0.01)
        for _ in range(25):
            journal.append_event("renew", node=0, worker="w1", token=1)
        before = journal.path.stat().st_size
        view_before = journal.load()
        out = run_cli(capsys, "sweep", "--compact-journal")
        assert "journal compacted" in out
        assert journal.path.stat().st_size < before
        assert journal.load() == view_before
        assert len([e for e in journal.events()
                    if e["event"] == "renew"]) == 0

    def test_compact_without_journal_is_a_noop(self, capsys, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "empty"))
        out = run_cli(capsys, "sweep", "--compact-journal")
        assert "nothing to compact" in out

    def test_compact_rejects_no_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        with pytest.raises(SystemExit, match="result cache"):
            main(["sweep", "--compact-journal", "--no-cache"])
