"""Hypothesis properties of the spec-DAG compilers.

The satellite contract: compiled DAGs are acyclic, topological order
respects ``find_parents``, and flat grids compile to the degenerate
single-layer DAG that matches today's flat sweep node-for-node —
under *arbitrary* grids, not just the fixtures the unit tests pick.
"""

from hypothesis import given, settings, strategies as st

from repro.core.configs import ALL_MODES
from repro.fabric import (compile_grid, compile_sensitivity_grid,
                         compile_size_search_grid, compile_sweep,
                         find_children, find_parents, walk_program,
                         SpecDAG)
from repro.harness.executor import RunSpec

WORKLOADS = ("vector_seq", "saxpy", "gemm")
SIZES = ("tiny", "small", "medium")


@st.composite
def spec_lists(draw, max_size=24):
    """Arbitrary (possibly ragged, possibly duplicated) spec grids."""
    count = draw(st.integers(min_value=1, max_value=max_size))
    specs = []
    for _ in range(count):
        specs.append(RunSpec(
            workload=draw(st.sampled_from(WORKLOADS)),
            size=draw(st.sampled_from(SIZES)),
            mode=draw(st.sampled_from(ALL_MODES)),
            iteration=draw(st.integers(min_value=0, max_value=3)),
            base_seed=draw(st.sampled_from((1234, 99))),
            threads=draw(st.sampled_from((None, 64, 256))),
        ))
    return specs


COMPILERS = (compile_grid, compile_sensitivity_grid,
             compile_size_search_grid)


@settings(max_examples=40, deadline=None)
@given(specs=spec_lists(), compiler=st.sampled_from(COMPILERS))
def test_compiled_dags_are_acyclic(specs, compiler):
    dag = compiler(specs)
    dag.validate()  # raises on a cycle
    assert len(list(dag.walk())) == len(dag)


@settings(max_examples=40, deadline=None)
@given(specs=spec_lists(), compiler=st.sampled_from(COMPILERS))
def test_topological_order_respects_find_parents(specs, compiler):
    dag = compiler(specs)
    seen = {}
    for node_id, layer in walk_program(dag):
        parents = find_parents(dag, node_id)
        for parent in parents:
            assert parent in seen  # parent yielded first
        expected_layer = max((seen[p] for p in parents), default=-1) + 1
        assert layer == expected_layer
        seen[node_id] = layer
    assert set(seen) == {node.node_id for node in dag}


@settings(max_examples=40, deadline=None)
@given(specs=spec_lists(), compiler=st.sampled_from(COMPILERS))
def test_parent_child_symmetry(specs, compiler):
    dag = compiler(specs)
    for node in dag:
        for parent in find_parents(dag, node.node_id):
            assert node.node_id in find_children(dag, parent)
        for child in find_children(dag, node.node_id):
            assert node.node_id in find_parents(dag, child)


@settings(max_examples=40, deadline=None)
@given(specs=spec_lists())
def test_flat_grid_compiles_degenerate(specs):
    """Flat grids: single layer, node-for-node today's sweep."""
    dag = compile_grid(specs)
    layers = dag.layers()
    assert len(layers) == 1
    assert [node.spec for node in layers[0]] == specs
    assert [node.run_index for node in layers[0]] == list(range(len(specs)))
    assert all(node.parents == () for node in dag)
    assert dag.specs == specs


@settings(max_examples=40, deadline=None)
@given(specs=spec_lists(), compiler=st.sampled_from(COMPILERS))
def test_run_order_preserved_and_json_stable(specs, compiler):
    """run_index enumerates input order; manifests round-trip exactly."""
    dag = compiler(specs)
    assert dag.specs == specs
    clone = SpecDAG.from_json(dag.to_json())
    assert clone.nodes == dag.nodes
    assert clone.to_json() == dag.to_json()


@settings(max_examples=20, deadline=None)
@given(specs=spec_lists(max_size=12),
       structure=st.sampled_from(("flat", "figure", "sensitivity",
                                  "sizesearch")))
def test_every_named_structure_covers_every_spec(specs, structure):
    dag = compile_sweep(specs, structure)
    dag.validate()
    assert sorted(n.run_index for n in dag if n.is_run) == \
        list(range(len(specs)))
