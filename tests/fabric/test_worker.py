"""Inline fabric worker/coordinator tests.

Everything here runs workers in-process (threads or direct calls, the
``crash_hook`` standing in for SIGKILL) so the protocol code is
visible to coverage; the subprocess battery lives in
``test_fabric_chaos.py``.
"""

import json
import threading
import time

import pytest

from repro.fabric import (Coordinator, FabricMeta, FabricRoot,
                         FabricWorker, WorkerCrashed, compile_grid,
                         compile_sensitivity_grid,
                         compile_size_search_grid, reduce_state,
                         run_fabric, straggler_nodes)
from repro.fabric.state import COMMITTED, FAILED, LEASED, READY, SKIPPED
from repro.harness import faults
from repro.harness.executor import (ResultCache, SweepExecutor,
                                    expand_grid)
from repro.harness.resilience import SpecStatus
from repro.harness.store import run_to_record


def small_grid(iterations=2, workloads=("vector_seq",)):
    return expand_grid(list(workloads), ["small"], iterations=iterations)


def make_root(tmp_path, specs, compiler=compile_grid, **meta_kwargs):
    meta_kwargs.setdefault("engine", "fast")
    meta_kwargs.setdefault("lease_s", 30.0)
    meta_kwargs.setdefault("poll_s", 0.005)
    return FabricRoot.init(tmp_path / "fab", compiler(specs),
                           meta=FabricMeta(**meta_kwargs))


def records(outcome):
    return [run_to_record(o.result, with_counters=True) for o in outcome]


class TestSingleWorker:
    def test_one_worker_drains_the_dag(self, tmp_path):
        specs = small_grid()
        fabric = make_root(tmp_path, specs)
        worker = FabricWorker(fabric, "w1")
        committed = worker.run()
        assert committed == len(specs)
        state = worker.snapshot()
        assert state.complete
        assert all(n.status == COMMITTED for n in state.nodes.values())

    def test_results_bit_identical_to_serial(self, tmp_path):
        specs = small_grid()
        fabric = make_root(tmp_path, specs)
        FabricWorker(fabric, "w1").run()
        coordinator = Coordinator(fabric, workers=1, spawn="thread")
        outcome = coordinator.collect()
        serial = SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "ref"),
                               engine="fast").run_outcomes(specs)
        assert records(outcome) == records(serial)

    def test_prewarm_nodes_commit_without_cache_entries(self, tmp_path):
        specs = small_grid(iterations=3)
        fabric = make_root(tmp_path, specs,
                           compiler=compile_sensitivity_grid)
        worker = FabricWorker(fabric, "w1")
        dag = fabric.load_dag()
        assert worker.run() == len(dag)  # run + prewarm nodes
        state = worker.snapshot()
        assert state.complete
        # Prewarm commits are events without cache keys.
        assert len(fabric.cache()) == len(specs)

    def test_worker_resumes_partial_sweep(self, tmp_path):
        specs = small_grid(iterations=3)
        fabric = make_root(tmp_path, specs)
        FabricWorker(fabric, "w1").run(max_nodes=4)
        worker2 = FabricWorker(fabric, "w2")
        committed = worker2.run()
        assert committed == len(specs) - 4
        assert worker2.snapshot().complete


class TestFailureRecovery:
    def test_crashed_worker_leaves_reclaimable_lease(self, tmp_path):
        specs = small_grid()
        fabric = make_root(tmp_path, specs, lease_s=0.05)
        plan = faults.FaultPlan(faults=(
            faults.Fault.for_spec(specs[0],
                                  kind=faults.KIND_WORKER_CRASH,
                                  attempts=(1,)),))

        def crash():
            raise WorkerCrashed("inline SIGKILL")

        with faults.inject(plan):
            victim = FabricWorker(fabric, "w1", crash_hook=crash)
            with pytest.raises(WorkerCrashed):
                victim.run()
            # The node's lease dangles with no heartbeat...
            assert fabric.leases().read(0) is not None
            time.sleep(0.08)
            # ...until a second worker claims over the expired lease
            # with a higher fencing token and finishes everything.
            rescuer = FabricWorker(fabric, "w2", crash_hook=crash)
            rescuer.run()
        state = rescuer.snapshot()
        assert state.complete
        assert state.nodes[0].status == COMMITTED
        assert state.nodes[0].token >= 2
        assert state.nodes[0].committed_by == "w2"

    def test_coordinator_logs_abandon_for_expired_lease(self, tmp_path):
        specs = small_grid()
        fabric = make_root(tmp_path, specs, lease_s=0.05)
        lease = fabric.leases().claim(0, "w1", 0.05)
        assert lease is not None
        time.sleep(0.08)
        coordinator = Coordinator(fabric, workers=1, spawn="thread")
        coordinator.monitor_once()
        events = [e for e in fabric.journal().events()
                  if e["event"] == "abandon"]
        assert len(events) == 1
        assert events[0]["node"] == 0
        assert events[0]["worker"] == "w1"
        # Idempotent: a second pass does not duplicate the abandon.
        coordinator.monitor_once()
        assert len([e for e in fabric.journal().events()
                    if e["event"] == "abandon"]) == 1

    def test_partitioned_zombie_commit_is_fenced(self, tmp_path):
        specs = small_grid(iterations=1)
        fabric = make_root(tmp_path, specs, lease_s=0.1)
        plan = faults.FaultPlan(faults=(
            faults.Fault.for_spec(specs[0], kind=faults.KIND_PARTITION,
                                  attempts=(1,)),))
        with faults.inject(plan):
            zombie = FabricWorker(fabric, "w1")
            barrier = threading.Event()
            original = FabricWorker._run_spec_node

            def stalled(self, node, lease, prior_errors):
                if faults.fabric_fault(node.spec, lease.token):
                    barrier.wait(timeout=5.0)  # hold mid-computation
                return original(self, node, lease, prior_errors)

            zombie._run_spec_node = stalled.__get__(zombie)
            thread = threading.Thread(
                target=lambda: zombie.run(max_nodes=1), daemon=True)
            thread.start()
            deadline = time.time() + 5.0
            while fabric.leases().read(0) is None \
                    and time.time() < deadline:
                time.sleep(0.01)
            time.sleep(0.15)  # heartbeats muted -> lease expires
            rescuer = FabricWorker(fabric, "w2")
            rescuer.run()
            barrier.set()  # zombie wakes, tries to commit, is fenced
            thread.join(timeout=10.0)
        events = fabric.journal().events()
        commits = [e for e in events
                   if e["event"] == "commit" and e["node"] == 0]
        fenced = [e for e in events
                  if e["event"] == "fenced" and e["node"] == 0]
        assert len(commits) == 1
        assert commits[0]["worker"] == "w2"
        assert fenced and fenced[0]["worker"] == "w1"

    def test_failed_node_fails_sweep_and_skips_children(self, tmp_path):
        specs = small_grid(iterations=2)
        fabric = make_root(tmp_path, specs,
                           compiler=compile_size_search_grid,
                           max_errors=1)
        probe_spec = specs[0]
        plan = faults.FaultPlan(faults=(
            faults.Fault.for_spec(probe_spec, kind=faults.KIND_FAIL,
                                  attempts=()),))
        with faults.inject(plan):
            worker = FabricWorker(fabric, "w1")
            worker.run()
        state = worker.snapshot()
        assert state.complete
        assert state.nodes[0].status == FAILED
        assert all(node.status == SKIPPED
                   for node_id, node in state.nodes.items() if node_id)
        outcome = Coordinator(fabric, workers=1,
                              spawn="thread").collect()
        assert outcome.outcomes[0].status is SpecStatus.FAILED
        assert "InjectedFault" in outcome.outcomes[0].error
        assert all(o.status is SpecStatus.SKIPPED
                   for o in outcome.outcomes[1:])

    def test_transient_error_retries_under_max_errors(self, tmp_path):
        specs = small_grid(iterations=1)
        fabric = make_root(tmp_path, specs, max_errors=3, lease_s=0.5)
        plan = faults.FaultPlan(faults=(
            faults.Fault.for_spec(specs[0], kind=faults.KIND_FAIL,
                                  attempts=(1,)),))  # first claim only
        with faults.inject(plan):
            worker = FabricWorker(fabric, "w1")
            worker.run()
        state = worker.snapshot()
        assert state.complete
        assert state.nodes[0].status == COMMITTED
        assert state.nodes[0].errors == 1  # one failed claim, then clean


class TestFamilyAffinity:
    def test_worker_drains_family_before_hopping(self, tmp_path):
        """When the current compile-group is exhausted, the worker
        prefers another group of the same fusion family over the
        first claimable node — whole families settle on one worker."""
        from repro.core.configs import TransferMode
        specs = []
        specs += expand_grid(["vector_seq"], ["small"],
                             [TransferMode.STANDARD], iterations=2,
                             blocks=64, threads=64)
        specs += expand_grid(["saxpy"], ["small"],
                             [TransferMode.STANDARD], iterations=2)
        specs += expand_grid(["vector_seq"], ["small"],
                             [TransferMode.STANDARD], iterations=2,
                             blocks=64, threads=256)
        fabric = make_root(tmp_path, specs)
        FabricWorker(fabric, "w1").run()
        commits = [e["node"] for e in fabric.journal().events()
                   if e["event"] == "commit"]
        # Starts at node 0 (first claimable), drains its group (0, 1),
        # then jumps the saxpy nodes (2, 3) to finish the vector_seq
        # family's other thread point (4, 5) first.
        assert commits == [0, 1, 4, 5, 2, 3]


class TestStragglerRedispatch:
    def test_straggler_is_redispatched_and_fenced(self, tmp_path):
        specs = small_grid(iterations=3)
        fabric = make_root(tmp_path, specs, lease_s=5.0,
                           straggler_min_s=0.2,
                           straggler_min_samples=2)
        plan = faults.FaultPlan(faults=(
            faults.Fault.for_spec(specs[0],
                                  kind=faults.KIND_LEASE_STALL,
                                  attempts=(1,), hang_s=30.0),))
        with faults.inject(plan):
            coordinator = Coordinator(fabric, workers=2, spawn="thread",
                                      monitor_s=0.05)
            outcome = coordinator.run(timeout_s=60.0)
        assert outcome.complete
        assert coordinator.stats.redispatches >= 1
        events = fabric.journal().events()
        redispatches = [e for e in events if e["event"] == "redispatch"]
        assert any(e["node"] == 0 for e in redispatches)
        commits = [e for e in events if e["event"] == "commit"
                   and e["node"] == 0]
        assert len(commits) == 1
        assert commits[0]["token"] > 1  # the speculative claim won
        serial = SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "ref"),
                               engine="fast").run_outcomes(specs)
        assert records(outcome) == records(serial)

    def test_straggler_detection_uses_group_median(self, tmp_path):
        specs = small_grid(iterations=3)
        fabric = make_root(tmp_path, specs, lease_s=60.0)
        dag = fabric.load_dag()
        journal = fabric.journal()
        leases = fabric.leases()
        # Three committed nodes at ~10ms runtime, one leased for ages.
        for node_id in (1, 2, 3):
            journal.append_event("commit", node=node_id, worker="w1",
                                 token=1, runtime_s=0.01)
        lease = leases.claim(0, "w2", 60.0)
        state = reduce_state(dag, journal.events(), leases.all_leases(),
                             60.0)
        state.now = lease.acquired_ts + 10.0  # elapsed >> 4 x median
        found = straggler_nodes(dag, state, straggler_factor=4.0,
                                straggler_min_s=0.1, min_samples=3)
        assert found == [(0, lease.token)]
        # Under min_samples there is no baseline: nothing straggles.
        assert straggler_nodes(dag, state, min_samples=5) == []


class TestFleet:
    def test_thread_fleet_matches_serial(self, tmp_path):
        specs = small_grid(iterations=3, workloads=("vector_seq", "saxpy"))
        outcome = run_fabric(
            specs, tmp_path / "fab", workers=3, spawn="thread",
            meta=FabricMeta(engine="fast", lease_s=2.0, poll_s=0.005),
            timeout_s=120.0)
        assert outcome.complete
        serial = SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "ref"),
                               engine="fast").run_outcomes(specs)
        assert records(outcome) == records(serial)
        stats = outcome.fabric_stats
        assert stats.workers_spawned == 3
        assert stats.elapsed_s > 0

    def test_one_commit_event_per_node(self, tmp_path):
        specs = small_grid(iterations=3)
        fabric = make_root(tmp_path, specs, lease_s=2.0)
        Coordinator(fabric, workers=3, spawn="thread",
                    monitor_s=0.05).run(timeout_s=60.0)
        commits = [e["node"] for e in fabric.journal().events()
                   if e["event"] == "commit"]
        assert sorted(commits) == sorted(set(commits))
        assert len(commits) == len(specs)

    def test_no_dangling_lease_after_completion(self, tmp_path):
        specs = small_grid(iterations=2)
        fabric = make_root(tmp_path, specs, lease_s=2.0)
        Coordinator(fabric, workers=2, spawn="thread",
                    monitor_s=0.05).run(timeout_s=60.0)
        assert fabric.leases().all_leases() == {}

    def test_fabric_root_refuses_a_different_sweep(self, tmp_path):
        specs = small_grid()
        make_root(tmp_path, specs)
        with pytest.raises(ValueError, match="different"):
            FabricRoot.init(tmp_path / "fab",
                            compile_grid(specs[:3]))

    def test_rerun_on_same_root_replays_from_cache(self, tmp_path):
        specs = small_grid()
        fabric = make_root(tmp_path, specs)
        FabricWorker(fabric, "w1").run()
        first = Coordinator(fabric, workers=1, spawn="thread").collect()
        # A second fleet on the same root finds every node committed.
        worker = FabricWorker(fabric, "w2")
        assert worker.run() == 0
        second = Coordinator(fabric, workers=1, spawn="thread").collect()
        assert records(first) == records(second)


class TestStateReducer:
    def test_status_render_shows_redispatch_and_heartbeats(self, tmp_path):
        from repro.fabric import render_status
        specs = small_grid()
        fabric = make_root(tmp_path, specs, lease_s=60.0)
        journal = fabric.journal()
        lease = fabric.leases().claim(0, "w1", 60.0)
        journal.append_event("claim", node=0, worker="w1",
                             token=lease.token)
        journal.append_event("redispatch", node=0, token=lease.token)
        text = render_status(fabric.root)
        assert "speculative re-dispatches: 1" in text
        assert "n0" in text
        assert "w1" in text
        assert "[re-dispatched]" in text
        assert "leased" in text

    def test_ready_vs_pending_vs_leased(self, tmp_path):
        specs = small_grid(iterations=2)
        fabric = make_root(tmp_path, specs,
                           compiler=compile_size_search_grid)
        dag = fabric.load_dag()
        journal = fabric.journal()
        leases = fabric.leases()
        state = reduce_state(dag, journal.events(), leases.all_leases(),
                             30.0)
        assert state.nodes[0].status == READY  # the probe
        assert all(state.nodes[n.node_id].status == "pending"
                   for n in dag if n.parents)
        lease = leases.claim(0, "w1", 30.0)
        journal.append_event("claim", node=0, worker="w1",
                             token=lease.token)
        state = reduce_state(dag, journal.events(), leases.all_leases(),
                             30.0)
        assert state.nodes[0].status == LEASED
        assert state.heartbeat_ages()["w1"] < 30.0
        journal.append_event("commit", node=0, worker="w1",
                             token=lease.token, runtime_s=0.01)
        leases.release(lease)
        state = reduce_state(dag, journal.events(), leases.all_leases(),
                             30.0)
        assert state.nodes[0].status == COMMITTED
        assert all(state.nodes[n.node_id].status == READY
                   for n in dag if n.parents)

    def test_collect_orders_by_run_index(self, tmp_path):
        specs = small_grid(iterations=2)
        fabric = make_root(tmp_path, specs,
                           compiler=compile_sensitivity_grid)
        FabricWorker(fabric, "w1").run()
        outcome = Coordinator(fabric, workers=1,
                              spawn="thread").collect()
        assert [o.index for o in outcome] == list(range(len(specs)))
        assert [o.spec for o in outcome] == list(specs)


class TestDuplicateCommit:
    def test_double_publish_one_store_one_duplicate(self, tmp_path):
        """Two workers finishing the same spec: one entry, one store."""
        specs = small_grid(iterations=1)
        fabric = make_root(tmp_path, specs)
        worker = FabricWorker(fabric, "w1")
        spec = specs[0]
        from repro.harness.executor import cache_key, execute_spec
        key = cache_key(spec)
        result = execute_spec(spec, engine="fast")
        cache = fabric.cache()
        assert cache.put(key, result) is True
        assert cache.put(key, result) is False  # zombie's late publish
        assert cache.stats.stores == 1
        assert cache.stats.duplicates == 1
        entry = json.loads(cache.path_for(key).read_text())
        assert entry == run_to_record(result, with_counters=True)
        assert worker._cache_get(spec, key) is not None
