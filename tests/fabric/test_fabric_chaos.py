"""Chaos acceptance: subprocess fleet vs. serial, bit for bit.

The ISSUE 9 acceptance gate: a 3-worker fabric sweep over a
fig12-scale grid, with one worker SIGKILLed mid-lease, another
stalled past the straggler threshold, and flaky cache IO sprinkled
in, must complete **byte-identical** to a serial sweep, with every
spec accounted for in the journal — no lost nodes, no
doubly-committed nodes, no dangling lease — and the speculative
re-dispatch visible in ``repro fabric status``.
"""

import json

import pytest

from repro import cli
from repro.core.configs import ALL_MODES
from repro.fabric import FabricMeta, FabricRoot, render_status, run_fabric
from repro.harness import faults
from repro.harness.executor import ResultCache, RunSpec, SweepExecutor
from repro.harness.sensitivity import (SWEEP_SEED_SALT, THREAD_SWEEP,
                                       THREAD_SWEEP_BLOCKS)
from repro.harness.store import run_to_record

pytestmark = pytest.mark.chaos


def fig12_grid(iterations=2, size="small"):
    """The Fig. 12 threads-sensitivity grid, exactly as ``_sweep``
    builds it: 6 thread counts x 5 modes x ``iterations``."""
    specs = []
    for count in THREAD_SWEEP:
        for mode in ALL_MODES:
            for iteration in range(iterations):
                specs.append(RunSpec(
                    workload="vector_seq", size=size, mode=mode,
                    iteration=iteration, base_seed=1234,
                    blocks=THREAD_SWEEP_BLOCKS, threads=count,
                    seed_salt=SWEEP_SEED_SALT))
    return specs


def sweep_bytes(outcomes):
    return json.dumps(
        [run_to_record(o.result, with_counters=True) for o in outcomes],
        sort_keys=True).encode()


def test_three_workers_one_crash_one_straggler_flaky_io(tmp_path, capsys):
    specs = fig12_grid()
    assert len(specs) == 60
    plan = faults.FaultPlan(faults=(
        # First claimant of spec 0 SIGKILLs itself while holding the
        # lease (a real subprocess death, not an exception).
        faults.Fault.for_spec(specs[0], kind=faults.KIND_WORKER_CRASH,
                              attempts=(1,)),
        # First claimant of spec 31 stalls far past the straggler
        # threshold while dutifully heartbeating.
        faults.Fault.for_spec(specs[31], kind=faults.KIND_LEASE_STALL,
                              attempts=(1,), hang_s=20.0),
        # Cache reads of spec 45 fail transiently.
        faults.Fault.for_spec(specs[45], kind=faults.KIND_FLAKY_IO,
                              attempts=(1,)),
    ))
    root = tmp_path / "fab"
    meta = FabricMeta(engine="fast", lease_s=1.0, straggler_factor=4.0,
                      straggler_min_s=0.3, straggler_min_samples=3,
                      poll_s=0.02)
    with faults.inject(plan):
        outcome = run_fabric(specs, root, workers=3, structure="figure",
                             meta=meta, spawn="process",
                             timeout_s=300.0)
    assert outcome.complete
    assert len(outcome.ok_results) == len(specs)

    # Byte-identical to a serial sweep into a fresh cache.
    serial = SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "ref"),
                           engine="fast").run_outcomes(specs)
    assert sweep_bytes(outcome) == sweep_bytes(serial)

    fabric = FabricRoot(root)
    events = fabric.journal().events()

    # Every spec accounted for: exactly one commit event per node.
    commits = [e["node"] for e in events if e["event"] == "commit"]
    assert sorted(commits) == list(range(len(specs)))

    # The crash was a real worker death: the coordinator respawned.
    stats = outcome.fabric_stats
    assert stats.workers_spawned >= 3
    assert stats.workers_respawned >= 1

    # The straggler was speculatively re-dispatched, and the
    # re-dispatched claim (higher fencing token) committed node 31.
    redispatched = {e["node"] for e in events
                    if e["event"] == "redispatch"}
    assert 31 in redispatched
    commit31 = next(e for e in events
                    if e["event"] == "commit" and e["node"] == 31)
    assert commit31["token"] > 1

    # No dangling lease after completion.
    assert fabric.leases().all_leases() == {}
    assert list(root.glob("leases/*.json")) == []

    # The re-dispatch is observable in ``repro fabric status``.
    text = render_status(root)
    assert "speculative re-dispatches:" in text
    assert "n31" in text
    assert "COMPLETE" in text
    assert cli.main(["fabric", "status", "--root", str(root)]) == 0
    cli_text = capsys.readouterr().out
    assert "speculative re-dispatches:" in cli_text
    assert "60/60" in cli_text.replace(" ", "")


def test_crash_mid_lease_recovers_without_faults_left_over(tmp_path):
    """A smaller crash-only run: the journal replays clean afterwards."""
    specs = fig12_grid(iterations=1)[:15]
    plan = faults.FaultPlan(faults=(
        faults.Fault.for_spec(specs[2], kind=faults.KIND_WORKER_CRASH,
                              attempts=(1,)),))
    root = tmp_path / "fab"
    meta = FabricMeta(engine="fast", lease_s=0.5, straggler_min_s=0.2,
                      poll_s=0.02)
    with faults.inject(plan):
        outcome = run_fabric(specs, root, workers=2, structure="flat",
                             meta=meta, spawn="process", timeout_s=180.0)
    assert outcome.complete
    serial = SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "ref"),
                           engine="fast").run_outcomes(specs)
    assert sweep_bytes(outcome) == sweep_bytes(serial)
    # The dead worker's claim is on record, and the node committed
    # under a strictly higher fencing token than the doomed claim.
    fabric = FabricRoot(root)
    events = fabric.journal().events()
    claims2 = [e for e in events
               if e["event"] == "claim" and e["node"] == 2]
    commit2 = [e for e in events
               if e["event"] == "commit" and e["node"] == 2]
    assert len(commit2) == 1
    assert len(claims2) >= 1
    assert commit2[0]["token"] >= max(e["token"] for e in claims2)
