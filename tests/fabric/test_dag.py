"""Spec-DAG compiler: structure, introspection, serial execution."""

import json

import pytest

from repro.fabric import (SpecDAG, SpecNode, compile_figure_grid,
                         compile_grid, compile_sensitivity_grid,
                         compile_size_search_grid, compile_sweep,
                         family_key, find_children, find_parents,
                         group_key, walk_program)
from repro.fabric.dag import KIND_PREWARM, renumber
from repro.harness.executor import (ResultCache, RunSpec, SweepExecutor,
                                    expand_grid)
from repro.harness.resilience import SpecStatus
from repro.harness.store import run_to_record


def grid(iterations=2, workloads=("vector_seq",), sizes=("small",)):
    return expand_grid(list(workloads), list(sizes), iterations=iterations)


class TestCompileGrid:
    def test_degenerate_single_layer(self):
        specs = grid()
        dag = compile_grid(specs)
        dag.validate()
        layers = dag.layers()
        assert len(layers) == 1
        assert len(layers[0]) == len(specs)

    def test_node_for_node_input_order(self):
        specs = grid()
        dag = compile_grid(specs)
        assert dag.run_count == len(specs)
        assert dag.specs == list(specs)
        for index, node in enumerate(dag.nodes):
            assert node.node_id == index
            assert node.run_index == index
            assert node.spec == specs[index]
            assert node.parents == ()

    def test_figure_grid_annotates_groups(self):
        specs = grid(workloads=("vector_seq", "saxpy"))
        dag = compile_figure_grid(specs)
        assert dag.specs == list(specs)
        groups = {node.group for node in dag.nodes}
        assert len(groups) > 1
        for node in dag.nodes:
            assert node.group == group_key(node.spec)


class TestFamilyAnnotations:
    """Axis-fusion families: the affinity coordinate workers lease by."""

    def test_nodes_carry_family_key(self):
        specs = []
        for threads in (64, 256):
            specs += expand_grid(["vector_seq"], ["small"], iterations=2,
                                 blocks=64, threads=threads)
        specs += expand_grid(["saxpy"], ["small"], iterations=2)
        dag = compile_figure_grid(specs)
        for node in dag.nodes:
            assert node.family == family_key(node.spec)
        # A family unions compile-groups: both thread points of
        # vector_seq share one family but keep distinct groups.
        vs = [n for n in dag.nodes if n.spec.workload == "vector_seq"
              and n.spec.mode.value == "standard"]
        assert len({n.family for n in vs}) == 1
        assert len({n.group for n in vs}) == 2

    @pytest.mark.parametrize("compiler", [
        compile_grid, compile_sensitivity_grid, compile_size_search_grid])
    def test_every_compiler_annotates_families(self, compiler):
        dag = compiler(grid(workloads=("vector_seq", "saxpy")))
        for node in dag.nodes:
            assert node.family == family_key(node.spec)

    def test_manifest_without_family_still_loads(self):
        """Pre-axis-fusion manifests lack the family field; loading
        one must degrade to no affinity, not reject the sweep."""
        dag = compile_grid(grid())
        data = json.loads(dag.to_json())
        for entry in data["nodes"]:
            del entry["family"]
        clone = SpecDAG.from_json(json.dumps(data))
        assert [n.spec for n in clone.nodes] == [n.spec for n in dag.nodes]
        assert all(n.family == () for n in clone.nodes)


class TestCompileSensitivity:
    def test_prewarm_prefix_per_group(self):
        specs = grid(iterations=3)
        dag = compile_sensitivity_grid(specs)
        dag.validate()
        prewarm = [n for n in dag.nodes if not n.is_run]
        run = [n for n in dag.nodes if n.is_run]
        assert len(run) == len(specs)
        assert {n.group for n in prewarm} == {n.group for n in run}
        for node in run:
            assert len(node.parents) == 1
            parent = dag[node.parents[0]]
            assert parent.kind == KIND_PREWARM
            assert parent.group == node.group

    def test_layers_prewarm_first(self):
        dag = compile_sensitivity_grid(grid())
        layers = dag.layers()
        assert len(layers) == 2
        assert all(not n.is_run for n in layers[0])
        assert all(n.is_run for n in layers[1])


class TestCompileSizeSearch:
    def test_probe_parents(self):
        specs = grid(iterations=2, sizes=("tiny", "small"))
        dag = compile_size_search_grid(specs)
        dag.validate()
        probes = [n for n in dag.nodes if n.role == "probe"]
        assert len(probes) == 2  # one per (workload, size)
        for node in dag.nodes:
            if node.role == "probe":
                assert node.parents == ()
            else:
                (parent,) = node.parents
                probe = dag[parent]
                assert probe.role == "probe"
                assert probe.spec.size == node.spec.size

    def test_probe_is_first_cell_of_size(self):
        specs = grid(iterations=2, sizes=("tiny", "small"))
        dag = compile_size_search_grid(specs)
        first_of_size = {}
        for spec in specs:
            first_of_size.setdefault((spec.workload, spec.size), spec)
        for node in dag.nodes:
            if node.role == "probe":
                key = (node.spec.workload, node.spec.size)
                assert node.spec == first_of_size[key]


class TestIntrospection:
    def test_walk_program_topological(self):
        dag = compile_size_search_grid(grid(sizes=("tiny", "small")))
        order = walk_program(dag)
        seen = set()
        for node_id, _layer in order:
            for parent in find_parents(dag, node_id):
                assert parent in seen
            seen.add(node_id)
        assert len(order) == len(dag)

    def test_find_parents_children_symmetry(self):
        dag = compile_sensitivity_grid(grid())
        for node in dag:
            for parent in find_parents(dag, node.node_id):
                assert node.node_id in find_children(dag, parent)
            for child in find_children(dag, node.node_id):
                assert node.node_id in find_parents(dag, child)

    def test_cycle_detected(self):
        spec = grid()[0]
        nodes = [
            SpecNode(node_id=0, spec=spec, parents=(1,), run_index=0),
            SpecNode(node_id=1, spec=spec, parents=(0,), run_index=1),
        ]
        dag = SpecDAG(nodes)
        with pytest.raises(ValueError, match="cyclic"):
            dag.validate()

    def test_bad_node_ids_rejected(self):
        spec = grid()[0]
        with pytest.raises(ValueError, match="node_id"):
            SpecDAG([SpecNode(node_id=5, spec=spec, run_index=0)])
        with pytest.raises(ValueError, match="unknown parent"):
            SpecDAG([SpecNode(node_id=0, spec=spec, parents=(7,),
                              run_index=0)])

    def test_node_kind_contract(self):
        spec = grid()[0]
        with pytest.raises(ValueError, match="kind"):
            SpecNode(node_id=0, kind="mystery", spec=spec)
        with pytest.raises(ValueError, match="need a spec"):
            SpecNode(node_id=0, spec=None)

    def test_ready_frontier(self):
        dag = compile_size_search_grid(grid(sizes=("tiny",)))
        probe = next(n.node_id for n in dag if n.role == "probe")
        assert dag.ready(set()) == [probe]
        rest = dag.ready({probe})
        assert probe not in rest
        assert len(rest) == len(dag) - 1

    def test_renumber_subgraph(self):
        dag = compile_size_search_grid(grid(sizes=("tiny", "small")))
        keep = [n.node_id for n in dag
                if n.spec.size == "tiny"]
        sub = renumber(dag, keep)
        sub.validate()
        assert len(sub) == len(keep)
        assert all(n.spec.size == "tiny" for n in sub)


class TestManifestRoundTrip:
    @pytest.mark.parametrize("compiler", [
        compile_grid, compile_figure_grid, compile_sensitivity_grid,
        compile_size_search_grid])
    def test_json_round_trip_exact(self, compiler):
        dag = compiler(grid(workloads=("vector_seq", "saxpy")))
        clone = SpecDAG.from_json(dag.to_json())
        assert clone.to_json() == dag.to_json()
        assert clone.nodes == dag.nodes

    def test_manifest_is_deterministic_json(self):
        dag = compile_grid(grid())
        assert json.loads(dag.to_json())["version"] == 1
        assert dag.to_json() == compile_grid(grid()).to_json()

    def test_compile_sweep_named_structures(self):
        specs = grid()
        assert compile_sweep(specs, "flat").run_count == len(specs)
        with pytest.raises(ValueError, match="unknown structure"):
            compile_sweep(specs, "banana")


class TestRunDag:
    """run_dag is the serial reference semantics of the fabric."""

    def executor(self, tmp_path, **kwargs):
        return SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "cache"),
                             engine="fast", **kwargs)

    def test_flat_dag_matches_run_outcomes(self, tmp_path):
        specs = grid()
        ref = self.executor(tmp_path / "a").run_outcomes(specs)
        out = self.executor(tmp_path / "b").run_dag(compile_grid(specs))
        assert len(out) == len(ref)
        for got, want in zip(out, ref):
            assert got.status is want.status
            assert got.index == want.index
            assert run_to_record(got.result, with_counters=True) == \
                run_to_record(want.result, with_counters=True)

    def test_sensitivity_dag_matches_flat(self, tmp_path):
        specs = grid(iterations=3)
        ref = self.executor(tmp_path / "a").run_outcomes(specs)
        out = self.executor(tmp_path / "b").run_dag(
            compile_sensitivity_grid(specs))
        assert [run_to_record(o.result) for o in out] == \
            [run_to_record(o.result) for o in ref]

    def test_failed_probe_skips_descendants(self, tmp_path):
        from repro.harness import faults
        specs = grid(iterations=2, sizes=("tiny",))
        dag = compile_size_search_grid(specs)
        probe = next(n for n in dag if n.role == "probe")
        plan = faults.FaultPlan(faults=(
            faults.Fault.for_spec(probe.spec, kind=faults.KIND_FAIL,
                                  attempts=()),))
        with faults.inject(plan):
            out = self.executor(tmp_path).run_dag(dag)
        by_index = {o.index: o for o in out}
        assert by_index[probe.run_index].status is SpecStatus.FAILED
        skipped = [o for o in out if o.status is SpecStatus.SKIPPED]
        assert len(skipped) == len(specs) - 1
        assert all("parent" in (o.error or "") for o in skipped)
