"""Lease protocol: fencing tokens, heartbeats, steals, releases."""

import json
import time

from repro.fabric.leases import Lease, LeaseDir


def test_claim_grants_monotonic_fenced_tokens(tmp_path):
    leases = LeaseDir(tmp_path)
    first = leases.claim(0, "w1", lease_s=60.0)
    assert first is not None and first.token == 1
    # Fresh lease: nobody else can claim.
    assert leases.claim(0, "w2", lease_s=60.0) is None
    leases.release(first)
    second = leases.claim(0, "w2", lease_s=60.0)
    assert second is not None
    assert second.token == 2  # tokens never reuse, even after release


def test_token_file_is_the_atomic_grant(tmp_path, monkeypatch):
    leases = LeaseDir(tmp_path)
    # Recreate the exact race window: a rival creates token file t1
    # *between* our scan (which saw none) and our O_EXCL create. The
    # O_EXCL failure is the clean loss — no double grant, no crash.
    real_scan = LeaseDir.highest_token

    def delayed_scan(self, node_id):
        highest = real_scan(self, node_id)
        (tmp_path / f"node{node_id}.t{highest + 1}").touch()  # rival wins
        return highest

    monkeypatch.setattr(LeaseDir, "highest_token", delayed_scan)
    assert leases.claim(7, "w1", lease_s=60.0) is None
    monkeypatch.undo()
    # The next attempt computes a higher token and wins.
    lease = leases.claim(7, "w1", lease_s=60.0)
    assert lease is not None and lease.token == 2


def test_expired_lease_is_stealable(tmp_path):
    leases = LeaseDir(tmp_path)
    stale = leases.claim(3, "w1", lease_s=0.01)
    time.sleep(0.03)
    stolen = leases.claim(3, "w2", lease_s=0.01)
    assert stolen is not None
    assert stolen.token == stale.token + 1
    assert stolen.worker == "w2"


def test_fresh_lease_stolen_only_with_beyond_token(tmp_path):
    leases = LeaseDir(tmp_path)
    holder = leases.claim(5, "w1", lease_s=60.0)
    # Plain claim refused; redispatch-style claim allowed.
    assert leases.claim(5, "w2", lease_s=60.0) is None
    assert leases.claim(5, "w2", lease_s=60.0,
                        beyond_token=holder.token - 1) is None
    stolen = leases.claim(5, "w2", lease_s=60.0,
                          beyond_token=holder.token)
    assert stolen is not None and stolen.token == holder.token + 1


def test_renew_detects_fencing(tmp_path):
    leases = LeaseDir(tmp_path)
    zombie = leases.claim(1, "w1", lease_s=0.01)
    renewed = leases.renew(zombie)
    assert renewed is not None
    assert renewed.heartbeat_ts >= zombie.heartbeat_ts
    time.sleep(0.03)
    stealer = leases.claim(1, "w2", lease_s=0.01)
    assert stealer is not None
    # The zombie is fenced on its next heartbeat and at commit time.
    assert leases.renew(zombie) is None
    assert leases.check(zombie) is False
    assert leases.check(stealer) is True


def test_fencing_authority_is_token_files_not_lease_json(tmp_path):
    """A zombie's stale lease-file write must not fence the stealer."""
    leases = LeaseDir(tmp_path)
    zombie = leases.claim(2, "w1", lease_s=0.01)
    time.sleep(0.03)
    stealer = leases.claim(2, "w2", lease_s=0.01)
    # Zombie's in-flight heartbeat write lands *after* the steal
    # (last-rename-wins on the JSON), momentarily masking the record.
    leases._write(Lease(node_id=2, worker="w1", token=zombie.token,
                        acquired_ts=zombie.acquired_ts,
                        heartbeat_ts=time.time()))
    assert leases.read(2).worker == "w1"  # the JSON lies...
    assert leases.check(stealer) is True  # ...the tokens do not
    assert leases.check(zombie) is False
    assert leases.renew(stealer) is not None


def test_release_ignores_foreign_and_fenced_leases(tmp_path):
    leases = LeaseDir(tmp_path)
    old = leases.claim(4, "w1", lease_s=0.01)
    time.sleep(0.03)
    new = leases.claim(4, "w2", lease_s=0.01)
    leases.release(old)  # fenced: must not unlink the stealer's lease
    assert leases.read(4) is not None
    assert leases.read(4).token == new.token
    leases.release(new)
    assert leases.read(4) is None


def test_sweep_removes_finished_nodes_leases(tmp_path):
    leases = LeaseDir(tmp_path)
    for node_id in (0, 1, 2):
        leases.claim(node_id, "w1", lease_s=60.0)
    assert leases.sweep([0, 2, 99]) == 2
    assert set(leases.all_leases()) == {1}


def test_torn_lease_record_reads_as_no_lease(tmp_path):
    leases = LeaseDir(tmp_path)
    leases.claim(9, "w1", lease_s=60.0)
    leases.lease_path(9).write_text('{"node_id": 9, "work')  # torn
    assert leases.read(9) is None
    assert 9 not in leases.all_leases()
    # ...which makes the node stealable — the safe direction.
    assert leases.claim(9, "w2", lease_s=60.0) is not None


def test_all_leases_and_highest_token_survive_junk_files(tmp_path):
    leases = LeaseDir(tmp_path)
    lease = leases.claim(0, "w1", lease_s=60.0)
    (tmp_path / "nodeX.json").write_text("{}")
    (tmp_path / "node0.tjunk").touch()
    assert set(leases.all_leases()) == {0}
    assert leases.highest_token(0) == lease.token
    record = json.loads(leases.lease_path(0).read_text())
    assert record["worker"] == "w1"
