"""CI gate: the shipped registry lints clean, and (when available)
the Python sources satisfy the ruff configuration in pyproject.toml.

The registry sweep is the contract ``repro lint --all --format json``
enforces in CI: a workload characterization that overflows shared
memory, exceeds HBM under an explicit mode, or contradicts its own
buffer declarations must never ship.
"""

import importlib.util
import json
import shutil
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis import lint_registry
from repro.cli import main
from repro.workloads.sizes import SizeClass

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestRegistryClean:
    def test_super_size_has_no_errors_or_warnings(self):
        report = lint_registry()
        offenders = [d.format() for d in report.errors + report.warnings]
        assert not offenders, "\n".join(offenders)

    def test_all_sizes_have_no_errors(self):
        report = lint_registry(sizes=list(SizeClass))
        offenders = [d.format() for d in report.errors]
        assert not offenders, "\n".join(offenders)

    def test_sweep_is_fast_enough_for_ci(self):
        """The acceptance contract: the default sweep (21 workloads x
        5 modes) finishes in seconds, not minutes (budget well above
        the ~5 s observed, below any CI timeout)."""
        start = time.monotonic()
        report = lint_registry()
        elapsed = time.monotonic() - start
        assert report.contexts == 105
        assert elapsed < 60.0, f"lint sweep took {elapsed:.1f}s"

    def test_cli_all_json_contract(self, capsys):
        """`repro lint --all --format json` - the exact CI invocation."""
        code = main(["lint", "--all", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["counts"]["error"] == 0
        assert payload["contexts"] > 105  # multiple size classes


class TestStaticClean:
    """The D4xx/F5xx analyzer finds nothing unsuppressed in the repo.

    This is the acceptance gate for `repro lint --static` in CI: new
    wall-clock reads, unseeded RNG, or un-fingerprinted cache inputs
    anywhere under the pure roots fail this test before they can
    poison the result cache or the phase memo.
    """

    def test_repo_has_no_active_static_findings(self):
        from repro.analysis.astlint import run_static_analysis
        report = run_static_analysis()
        offenders = [d.format() for d in report.diagnostics]
        assert not offenders, "\n".join(offenders)

    def test_every_inline_suppression_is_used_and_justified(self):
        """Suppressed findings exist (the faults.py env-channel) but
        every pragma must be consumed: A001/A002 are findings too and
        would land in report.diagnostics above; here we pin the known
        suppression count so silent growth is visible in review."""
        from repro.analysis.astlint import run_static_analysis
        report = run_static_analysis()
        rules = sorted(d.rule for d in report.suppressed)
        # faults.py plan channel (D405/D409) + vecgrid's call-local
        # duration_parts memo key (D407).
        assert rules == ["D405", "D407", "D409"]

    def test_cli_static_gate_exit_zero(self, capsys):
        """`repro lint --static --strict` - the exact CI invocation."""
        code = main(["lint", "--static", "--strict"])
        capsys.readouterr()
        assert code == 0


class TestRuffClean:
    @pytest.mark.skipif(
        shutil.which("ruff") is None
        and importlib.util.find_spec("ruff") is None,
        reason="ruff is not installed in this environment")
    def test_sources_pass_ruff(self):
        """Gated style check: runs only where ruff exists; the
        [tool.ruff] table in pyproject.toml carries the config."""
        if shutil.which("ruff"):
            cmd = ["ruff", "check", "src", "tests"]
        else:
            cmd = [sys.executable, "-m", "ruff", "check", "src", "tests"]
        result = subprocess.run(cmd, cwd=REPO_ROOT, capture_output=True,
                                text=True)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_pyproject_declares_ruff_config(self):
        """Even without ruff installed, the config must ship so CI
        images that do have it pick up the same rules."""
        text = (REPO_ROOT / "pyproject.toml").read_text()
        assert "[tool.ruff]" in text
        assert "[tool.ruff.lint]" in text
