"""CSV export tests."""

import csv
import io

from repro.core.configs import TransferMode
from repro.core.experiment import Experiment
from repro.harness.export import (comparison_to_csv, runset_to_csv,
                                  sweep_to_csv)
from repro.harness.sensitivity import carveout_sensitivity
from repro.workloads.sizes import SizeClass

import pytest


@pytest.fixture(scope="module")
def experiment():
    return Experiment(workload="saxpy", size=SizeClass.SMALL, iterations=3)


class TestRunsetCsv:
    def test_one_row_per_run(self, experiment):
        runs = experiment.run_mode(TransferMode.STANDARD)
        text = runset_to_csv(runs)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 3
        assert rows[0]["workload"] == "saxpy"
        assert float(rows[0]["total_ns"]) > 0

    def test_total_is_component_sum(self, experiment):
        runs = experiment.run_mode(TransferMode.UVM)
        rows = list(csv.DictReader(io.StringIO(runset_to_csv(runs))))
        for row in rows:
            total = (float(row["alloc_ns"]) + float(row["memcpy_ns"])
                     + float(row["kernel_ns"]))
            assert float(row["total_ns"]) == pytest.approx(total, abs=1.0)

    def test_writes_file(self, experiment, tmp_path):
        runs = experiment.run_mode(TransferMode.STANDARD)
        path = tmp_path / "runs.csv"
        runset_to_csv(runs, path)
        assert path.read_text().startswith("workload,")


class TestComparisonCsv:
    def test_five_rows(self, experiment):
        comparison = experiment.run()
        rows = list(csv.DictReader(io.StringIO(
            comparison_to_csv(comparison))))
        assert len(rows) == 5
        modes = {row["mode"] for row in rows}
        assert modes == {m.value for m in TransferMode}

    def test_standard_normalized_to_one(self, experiment):
        comparison = experiment.run()
        rows = list(csv.DictReader(io.StringIO(
            comparison_to_csv(comparison))))
        standard = next(r for r in rows if r["mode"] == "standard")
        assert float(standard["normalized_total"]) == pytest.approx(1.0)


class TestSweepCsv:
    def test_sweep_rows(self):
        data = carveout_sensitivity(carveouts_kb=(8, 32), iterations=2,
                                    modes=(TransferMode.STANDARD,
                                           TransferMode.ASYNC))
        text = sweep_to_csv(data, "smem_kb")
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 4
        assert {row["smem_kb"] for row in rows} == {"8", "32"}
