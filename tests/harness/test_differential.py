"""Engine equivalence battery: reference vs fast vs vector.

The fast engine (:class:`repro.sim.fastpath.FastEnvironment`) is only
allowed to skip event machinery it can *prove* unobservable, and the
vector engine (:mod:`repro.sim.vecgrid`) replays programs analytically
with a contention classifier that reroutes anything ambiguous — so
every simulated quantity on every engine — phase times, wall clock,
timeline events, CUPTI counters, UVM fault-batch counts and migration
volumes — must be **bit-identical** to the reference engine, not
merely close.  This module is the proof battery: a curated
workload x mode grid run three ways, a timeline-level comparison
(every recorded event, every kernel execution), and a hypothesis fuzz
over synthetic programs.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configs import TransferMode
from repro.core.execution import (ENGINES, _explicit_process,
                                  _managed_process, execute_program,
                                  make_runtime)
from repro.sim.calibration import default_calibration
from repro.sim.hardware import default_system
from repro.sim.kernel import AccessPattern, KernelDescriptor
from repro.sim.program import simple_program
from repro.workloads.registry import get_workload
from repro.workloads.sizes import SizeClass

MODES = list(TransferMode)
ENGINE_NAMES = tuple(ENGINES)  # reference, fast, vector

# Micro kernels at the paper's largest class, applications at LARGE:
# together they exercise explicit trains, prefetch trains, demand
# migration, oversubscription, iterative launch_repeated, and d2h
# writebacks.
BATTERY = [
    ("vector_seq", SizeClass.MEGA),
    ("vector_rand", SizeClass.MEGA),
    ("saxpy", SizeClass.MEGA),
    ("gemm", SizeClass.LARGE),
    ("hotspot", SizeClass.LARGE),
    ("kmeans", SizeClass.LARGE),
    ("srad", SizeClass.LARGE),
    ("pathfinder", SizeClass.LARGE),
    ("knn", SizeClass.LARGE),
]


def run_once(program, mode, engine, size):
    return execute_program(program, mode, seed=7, engine=engine,
                           size_label=size.label)


class TestBattery:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    @pytest.mark.parametrize("name,size", BATTERY,
                             ids=[w for w, _ in BATTERY])
    def test_run_results_bit_identical_three_way(self, name, size, mode):
        workload = get_workload(name)
        if not workload.supports(size):
            pytest.skip(f"{name} undefined at {size.label}")
        program = workload.program(size)
        ref = run_once(program, mode, "reference", size)
        for engine in ENGINE_NAMES:
            if engine == "reference":
                continue
            other = run_once(program, mode, engine, size)
            # Dataclass equality covers every timing field and the full
            # counter report (per-kernel instruction mixes, miss rates,
            # DRAM traffic, occupancy) — all bitwise, no tolerances.
            assert other == ref, engine
            assert other.breakdown() == ref.breakdown(), engine
            assert other.total_ns == ref.total_ns, engine


def run_runtime(program, mode, engine):
    """execute_program's internals, exposing the runtime itself.

    ``make_runtime`` builds the event runtime for reference/fast and
    the analytic :class:`repro.sim.vecgrid.AnalyticRuntime` for
    vector — both :class:`CudaRuntime` subclasses exposing the same
    timeline/executions/counters surface.
    """
    system, calib = default_system(), default_calibration()
    rt = make_runtime(engine, system, calib, np.random.default_rng(7),
                      footprint_bytes=program.footprint_bytes)
    if mode.managed:
        process = _managed_process(rt, program, mode)
    else:
        process = _explicit_process(rt, program, mode)
    rt.run(process)
    return rt


class TestTimelineLevel:
    """Event-by-event equivalence, not just aggregate times."""

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_every_trace_event_identical(self, mode):
        program = get_workload("hotspot").program(SizeClass.LARGE)
        ref = run_runtime(program, mode, "reference")
        for engine in ("fast", "vector"):
            other = run_runtime(program, mode, engine)
            assert other.timeline.events == ref.timeline.events, engine
            assert other.env.now == ref.env.now, engine

    @pytest.mark.parametrize("engine", ("fast", "vector"))
    @pytest.mark.parametrize("mode",
                             [TransferMode.UVM, TransferMode.UVM_PREFETCH,
                              TransferMode.UVM_PREFETCH_ASYNC],
                             ids=lambda m: m.value)
    def test_uvm_fault_batches_and_migration_volumes(self, mode, engine):
        """The UVM driver model must agree across engines on *how much*
        moved and in *how many* service rounds, not only on time."""
        program = get_workload("srad").program(SizeClass.LARGE)
        ref = run_runtime(program, mode, "reference")
        other = run_runtime(program, mode, engine)
        ref_exec = [(e.name, e.fault_batches, e.demand_migrated_bytes,
                     e.fault_stall_ns) for e in ref.executions]
        other_exec = [(e.name, e.fault_batches, e.demand_migrated_bytes,
                       e.fault_stall_ns) for e in other.executions]
        assert other_exec == ref_exec
        if mode is TransferMode.UVM:
            # Cold demand paging must actually migrate something, or
            # the comparison above is vacuous.
            assert sum(e.fault_batches for e in ref.executions) > 0
            assert sum(e.demand_migrated_bytes for e in ref.executions) > 0
        migrations = [e for e in ref.timeline.events
                      if e.name.startswith(("uvm migrate", "uvm writeback"))]
        other_migrations = [e for e in other.timeline.events
                            if e.name.startswith(("uvm migrate",
                                                  "uvm writeback"))]
        assert other_migrations == migrations

    def test_counters_identical_per_kernel(self):
        program = get_workload("gemm").program(SizeClass.LARGE)
        for mode in MODES:
            ref = run_runtime(program, mode, "reference")
            for engine in ("fast", "vector"):
                assert run_runtime(program, mode,
                                   engine).counters == ref.counters, engine


# ----------------------------------------------------------------------
# Hypothesis fuzz over synthetic single-kernel programs
# ----------------------------------------------------------------------
PATTERNS = list(AccessPattern)


@st.composite
def programs(draw):
    blocks = draw(st.integers(min_value=1, max_value=4096))
    tiles = draw(st.integers(min_value=1, max_value=64))
    tile_bytes = draw(st.sampled_from([4096, 16384, 49152]))
    desc = KernelDescriptor(
        name="fuzz",
        blocks=blocks,
        threads_per_block=draw(st.sampled_from([64, 128, 256, 1024])),
        tiles_per_block=tiles,
        tile_bytes=tile_bytes,
        compute_cycles_per_tile=draw(st.floats(min_value=1.0,
                                               max_value=1e6)),
        access_pattern=draw(st.sampled_from(PATTERNS)),
        write_bytes=draw(st.integers(min_value=0, max_value=1 << 30)),
        reuse=draw(st.floats(min_value=1.0, max_value=64.0)),
        touched_fraction=draw(st.floats(min_value=0.01, max_value=1.0)),
    )
    in_bytes = draw(st.integers(min_value=1 << 12, max_value=1 << 36))
    out_bytes = draw(st.integers(min_value=1 << 12, max_value=1 << 32))
    iterations = draw(st.integers(min_value=1, max_value=200))
    return simple_program("fuzz", desc, in_bytes, out_bytes,
                          iterations=iterations)


@given(program=programs(),
       mode=st.sampled_from(MODES),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_fuzz_three_way(program, mode, seed):
    """Reference vs fast vs vector over synthetic programs.

    The vector leg also exercises the contention-fallback path: when
    the classifier bails, execute_program reroutes on the snapshotted
    RNG state, so the result must *still* be bitwise reference."""
    ref = execute_program(program, mode, seed=seed, engine="reference")
    for engine in ("fast", "vector"):
        other = execute_program(program, mode, seed=seed, engine=engine)
        assert dataclasses.asdict(other) == dataclasses.asdict(ref), engine
