"""Resilient-execution battery: isolation, retry, timeout, crash,
journal/resume, interruption, and the end-to-end chaos acceptance run.

Everything here is deterministic: faults come from a declarative
:class:`~repro.harness.faults.FaultPlan` keyed on spec coordinates and
attempt numbers, and retry jitter is seeded from each spec's own seed
stream — so the battery replays bit-identically on every backend.
"""

import json

import pytest

from repro.core.configs import ALL_MODES
from repro.harness import faults
from repro.harness.executor import (ResultCache, RunSpec, SweepExecutor,
                                    expand_grid)
from repro.harness.resilience import (RetryPolicy, SpecOutcome, SpecStatus,
                                      SweepFailure, SweepInterrupted,
                                      SweepJournal, SweepOutcome,
                                      describe_spec)
from repro.harness.store import run_to_record
from repro.workloads.sizes import SizeClass

GRID = dict(workloads=("vector_seq", "saxpy"), sizes=(SizeClass.TINY,),
            modes=ALL_MODES, iterations=3)  # 30 specs


def serialize(runs):
    return [json.dumps(run_to_record(run, with_counters=True),
                       sort_keys=True) if run is not None else None
            for run in runs]


def fail_fault(spec, attempts=()):
    return faults.Fault.for_spec(spec, kind=faults.KIND_FAIL,
                                 attempts=attempts)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def specs():
    return expand_grid(**GRID)


@pytest.fixture(scope="module")
def clean_results(specs):
    return SweepExecutor(jobs=1).run(specs)


FAST = RetryPolicy(retries=0, backoff_s=0.0)
FAST_RETRY = RetryPolicy(retries=2, backoff_s=0.0)


# ----------------------------------------------------------------------
# Failure isolation
# ----------------------------------------------------------------------
class TestIsolation:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_one_failure_does_not_abort_the_sweep(self, specs,
                                                  clean_results, jobs):
        plan = faults.FaultPlan(faults=(fail_fault(specs[7]),))
        executor = SweepExecutor(jobs=jobs, retry=FAST)
        with faults.inject(plan):
            outcome = executor.run_outcomes(specs)
        assert not outcome.complete
        assert outcome.outcomes[7].status is SpecStatus.FAILED
        assert "InjectedFault" in outcome.outcomes[7].error
        assert outcome.outcomes[7].traceback  # full worker traceback kept
        survivors = [run for index, run in enumerate(outcome.results)
                     if index != 7]
        expected = [run for index, run in enumerate(clean_results)
                    if index != 7]
        assert serialize(survivors) == serialize(expected)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_thread_backend_propagates_worker_exception_detail(
            self, specs, jobs):
        """Satellite (d): the worker's exception reaches the outcome."""
        plan = faults.FaultPlan(faults=(fail_fault(specs[0]),))
        executor = SweepExecutor(jobs=jobs, backend="thread", retry=FAST)
        with faults.inject(plan):
            outcome = executor.run_outcomes(specs[:5])
        failed = outcome.outcomes[0]
        assert failed.status is SpecStatus.FAILED
        assert "injected failure" in failed.error
        assert "InjectedFault" in failed.traceback
        assert executor.last.failed == 1

    def test_results_keep_spec_order_with_gaps(self, specs):
        plan = faults.FaultPlan(faults=(fail_fault(specs[2]),
                                        fail_fault(specs[9])))
        executor = SweepExecutor(jobs=4, retry=FAST)
        with faults.inject(plan):
            results = executor.run_outcomes(specs[:12]).results
        assert results[2] is None and results[9] is None
        for index, run in enumerate(results):
            if run is None:
                continue
            spec = specs[index]
            assert (run.workload, run.size, run.mode, run.seed) == \
                (spec.workload, spec.size, spec.mode, spec.iteration)


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    @pytest.mark.parametrize("kwargs", [
        dict(retries=-1), dict(backoff_s=-0.1), dict(backoff_factor=0.5),
        dict(jitter=1.5), dict(timeout_s=0.0), dict(max_crashes=0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_max_attempts(self):
        assert RetryPolicy().max_attempts == 1
        assert RetryPolicy(retries=3).max_attempts == 4

    def test_delay_is_deterministic_per_spec(self, specs):
        policy = RetryPolicy(retries=3, backoff_s=0.1)
        for attempt in (1, 2, 3):
            assert policy.delay_s(specs[0], attempt) == \
                policy.delay_s(specs[0], attempt)
        # different specs draw different jitter from their own streams
        assert policy.delay_s(specs[0], 1) != policy.delay_s(specs[1], 1)

    def test_backoff_grows_exponentially_without_jitter(self, specs):
        policy = RetryPolicy(retries=3, backoff_s=0.1, jitter=0.0)
        assert policy.delay_s(specs[0], 1) == pytest.approx(0.1)
        assert policy.delay_s(specs[0], 2) == pytest.approx(0.2)
        assert policy.delay_s(specs[0], 3) == pytest.approx(0.4)

    def test_jitter_stays_within_band(self, specs):
        policy = RetryPolicy(retries=5, backoff_s=0.1, jitter=0.25)
        for spec in specs[:10]:
            delay = policy.delay_s(spec, 1)
            assert 0.075 <= delay <= 0.125

    def test_zero_backoff_means_no_sleep(self, specs):
        assert RetryPolicy(backoff_s=0.0).delay_s(specs[0], 1) == 0.0


class TestRetries:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_transient_failure_recovered(self, specs, clean_results, jobs):
        plan = faults.FaultPlan(
            faults=(fail_fault(specs[3], attempts=(1, 2)),))
        executor = SweepExecutor(jobs=jobs, retry=FAST_RETRY)
        with faults.inject(plan):
            outcome = executor.run_outcomes(specs)
        assert outcome.complete
        assert outcome.outcomes[3].attempts == 3
        assert executor.last.retries == 2
        # retried attempts are bit-identical to never-failed runs
        assert serialize(outcome.results) == serialize(clean_results)

    def test_permanent_failure_exhausts_attempts(self, specs):
        plan = faults.FaultPlan(faults=(fail_fault(specs[0]),))
        executor = SweepExecutor(jobs=1, retry=FAST_RETRY)
        with faults.inject(plan):
            outcome = executor.run_outcomes(specs[:2])
        assert outcome.outcomes[0].status is SpecStatus.FAILED
        assert outcome.outcomes[0].attempts == FAST_RETRY.max_attempts
        assert executor.last.retries == FAST_RETRY.retries


# ----------------------------------------------------------------------
# Strict mode
# ----------------------------------------------------------------------
class TestStrict:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_strict_raises_at_first_permanent_failure(self, specs, jobs):
        plan = faults.FaultPlan(faults=(fail_fault(specs[4]),))
        executor = SweepExecutor(jobs=jobs, retry=FAST, strict=True)
        with faults.inject(plan):
            with pytest.raises(SweepFailure) as excinfo:
                executor.run_outcomes(specs)
        assert excinfo.value.outcome.status is SpecStatus.FAILED
        assert excinfo.value.partial is not None
        assert describe_spec(specs[4]) in str(excinfo.value)

    def test_legacy_run_facade_is_strict(self, specs):
        plan = faults.FaultPlan(faults=(fail_fault(specs[0]),))
        with faults.inject(plan):
            with pytest.raises(SweepFailure):
                SweepExecutor(jobs=1, retry=FAST).run(specs[:3])

    def test_strict_argument_overrides_executor_default(self, specs):
        plan = faults.FaultPlan(faults=(fail_fault(specs[0]),))
        executor = SweepExecutor(jobs=1, retry=FAST, strict=True)
        with faults.inject(plan):
            outcome = executor.run_outcomes(specs[:3], strict=False)
        assert not outcome.complete  # tolerated despite executor default


# ----------------------------------------------------------------------
# Timeouts and worker crashes (process backend)
# ----------------------------------------------------------------------
class TestProcessBackendChaos:
    def test_hung_worker_is_killed_and_retried(self, specs, clean_results):
        plan = faults.FaultPlan(faults=(
            faults.Fault.for_spec(specs[1], kind=faults.KIND_HANG,
                                  attempts=(1,), hang_s=30.0),))
        executor = SweepExecutor(
            jobs=2, backend="process",
            retry=RetryPolicy(retries=1, backoff_s=0.0, timeout_s=1.0))
        with faults.inject(plan):
            outcome = executor.run_outcomes(specs[:4])
        assert outcome.complete
        assert outcome.outcomes[1].attempts == 2
        assert serialize(outcome.results) == serialize(clean_results[:4])

    def test_permanent_hang_times_out(self, specs):
        plan = faults.FaultPlan(faults=(
            faults.Fault.for_spec(specs[1], kind=faults.KIND_HANG,
                                  attempts=(), hang_s=30.0),))
        executor = SweepExecutor(
            jobs=2, backend="process",
            retry=RetryPolicy(retries=0, backoff_s=0.0, timeout_s=1.0))
        with faults.inject(plan):
            outcome = executor.run_outcomes(specs[:4])
        hung = outcome.outcomes[1]
        assert hung.status is SpecStatus.TIMED_OUT
        assert "wall-clock budget" in hung.error
        assert [o.status for o in outcome.outcomes].count(SpecStatus.OK) == 3

    def test_worker_crash_is_quarantined_as_poison(self, specs,
                                                   clean_results):
        """Satellite (d): a SIGKILLed worker mid-spec does not take the
        sweep down; the poison spec is quarantined after max_crashes."""
        plan = faults.FaultPlan(faults=(
            faults.Fault.for_spec(specs[2], kind=faults.KIND_CRASH,
                                  attempts=()),))
        executor = SweepExecutor(
            jobs=2, backend="process",
            retry=RetryPolicy(retries=0, backoff_s=0.0, max_crashes=2))
        with faults.inject(plan):
            outcome = executor.run_outcomes(specs[:6])
        poisoned = outcome.outcomes[2]
        assert poisoned.status is SpecStatus.FAILED
        assert "poison" in poisoned.error
        assert poisoned.crashes >= 2
        assert executor.last.crashes >= 2
        survivors = [r for i, r in enumerate(outcome.results) if i != 2]
        expected = [r for i, r in enumerate(clean_results[:6]) if i != 2]
        assert serialize(survivors) == serialize(expected)


# ----------------------------------------------------------------------
# Journal + resume
# ----------------------------------------------------------------------
class TestJournalResume:
    def make_executor(self, tmp_path, **kwargs):
        cache = ResultCache(tmp_path / "cache")
        journal = SweepJournal.beside(cache.root)
        kwargs.setdefault("retry", FAST)
        return SweepExecutor(jobs=1, cache=cache, journal=journal, **kwargs)

    def test_journal_records_terminal_outcomes(self, tmp_path, specs):
        executor = self.make_executor(tmp_path)
        plan = faults.FaultPlan(faults=(fail_fault(specs[1]),))
        with faults.inject(plan):
            executor.run_outcomes(specs[:4])
        entries = executor.journal.load()
        assert len(entries) == 4
        assert sorted(entries.values()) == ["failed", "ok", "ok", "ok"]
        assert executor.journal.failed_keys() == \
            {executor.key_for(specs[1]): "failed"}

    def test_resume_skips_journaled_failures_and_replays_cache(
            self, tmp_path, specs):
        plan = faults.FaultPlan(faults=(fail_fault(specs[1]),))
        first = self.make_executor(tmp_path)
        with faults.inject(plan):
            cold = first.run_outcomes(specs[:5])
        resumed = self.make_executor(tmp_path, resume=True)
        warm = resumed.run_outcomes(specs[:5])  # no plan: fault is gone
        # the journaled failure is skipped, not re-attempted
        assert warm.outcomes[1].status is SpecStatus.SKIPPED
        assert "journaled failed" in warm.outcomes[1].error
        # everything else replays bit-identically from the cache
        assert resumed.last.executed == 0
        assert resumed.last.cache_hits == 4
        assert serialize(warm.results) == serialize(cold.results)

    def test_fresh_sweep_clears_stale_journal(self, tmp_path, specs):
        plan = faults.FaultPlan(faults=(fail_fault(specs[1]),))
        first = self.make_executor(tmp_path)
        with faults.inject(plan):
            first.run_outcomes(specs[:3])
        assert first.journal.failed_keys()
        second = self.make_executor(tmp_path)  # resume=False (default)
        outcome = second.run_outcomes(specs[:3])  # fault cleared
        assert outcome.complete  # the failed cell was re-attempted
        assert not second.journal.failed_keys()

    def test_journal_tolerates_torn_tail(self, tmp_path):
        journal = SweepJournal(tmp_path / "journal.jsonl")
        journal.record("aaaa", SpecStatus.OK, attempts=1)
        journal.record("bbbb", SpecStatus.FAILED, error="boom")
        with journal.path.open("a") as stream:
            stream.write('{"key": "cccc", "status"')  # SIGKILL mid-write
        assert journal.load() == {"aaaa": "ok", "bbbb": "failed"}
        assert journal.failed_keys() == {"bbbb": "failed"}

    def test_later_journal_lines_win(self, tmp_path):
        journal = SweepJournal(tmp_path / "journal.jsonl")
        journal.record("aaaa", SpecStatus.FAILED, error="flaky")
        journal.record("aaaa", SpecStatus.OK, attempts=2)
        assert journal.failed_keys() == {}


# ----------------------------------------------------------------------
# Interruption (Ctrl-C / SIGTERM)
# ----------------------------------------------------------------------
class TestInterruption:
    def test_interrupt_flushes_journal_and_carries_partial(
            self, tmp_path, specs, monkeypatch):
        import repro.harness.executor as executor_module
        cache = ResultCache(tmp_path / "cache")
        executor = SweepExecutor(jobs=1, cache=cache,
                                 journal=SweepJournal.beside(cache.root))
        real_entry = executor_module._execute_entry
        target = specs[3]
        fired = []

        def interrupting_entry(entry):
            if entry[0] == target and not fired:
                fired.append(True)  # one-shot: the resumed run is clean
                raise KeyboardInterrupt
            return real_entry(entry)

        monkeypatch.setattr(executor_module, "_execute_entry",
                            interrupting_entry)
        with pytest.raises(SweepInterrupted) as excinfo:
            executor.run_outcomes(specs[:6])
        partial = excinfo.value.partial
        assert sum(1 for o in partial.outcomes if o.ok) == 3
        # finished cells were journaled + cached before the interrupt,
        # so a resumed sweep replays them without re-executing
        assert len(executor.journal) == 3
        resumed = SweepExecutor(jobs=1, cache=ResultCache(cache.root),
                                journal=SweepJournal.beside(cache.root),
                                resume=True)
        outcome = resumed.run_outcomes(specs[:6])
        assert outcome.complete
        assert resumed.last.cache_hits == 3
        assert resumed.last.executed == 3


# ----------------------------------------------------------------------
# Cache corruption
# ----------------------------------------------------------------------
class TestCorruptCache:
    def test_torn_write_is_quarantined_and_reexecuted(self, tmp_path,
                                                      specs,
                                                      clean_results):
        cache = ResultCache(tmp_path / "cache")
        plan = faults.FaultPlan(faults=(
            faults.Fault.for_spec(specs[0],
                                  kind=faults.KIND_CORRUPT_CACHE),))
        executor = SweepExecutor(jobs=1, cache=cache)
        with faults.inject(plan):
            executor.run_outcomes(specs[:3])  # writes a torn record
        warm = SweepExecutor(jobs=1, cache=cache)
        outcome = warm.run_outcomes(specs[:3])
        assert outcome.complete
        assert cache.stats.corrupt == 1
        assert warm.last.cache_hits == 2 and warm.last.executed == 1
        # the broken record was moved aside, then a clean one published
        key = warm.key_for(specs[0])
        assert cache.path_for(key).with_suffix(".corrupt").exists()
        assert serialize(outcome.results) == serialize(clean_results[:3])


# ----------------------------------------------------------------------
# Outcome bookkeeping
# ----------------------------------------------------------------------
class TestOutcomeReporting:
    def test_failure_summary_counts_and_limits(self, specs):
        outcome = SweepOutcome(outcomes=[
            SpecOutcome(spec=specs[i], index=i,
                        status=(SpecStatus.FAILED if i < 12
                                else SpecStatus.OK),
                        error="boom" if i < 12 else None)
            for i in range(15)])
        summary = outcome.failure_summary(limit=10)
        assert "12 of 15 specs missing" in summary
        assert "12 failed" in summary
        assert "... and 2 more" in summary
        assert outcome.counts()["failed"] == 12

    def test_complete_outcome_has_empty_summary(self, specs):
        outcome = SweepOutcome(outcomes=[
            SpecOutcome(spec=specs[0], index=0, status=SpecStatus.OK)])
        assert outcome.complete
        assert outcome.failure_summary() == ""

    def test_stats_summary_mentions_failures(self, specs):
        plan = faults.FaultPlan(faults=(fail_fault(specs[0]),))
        executor = SweepExecutor(jobs=1, retry=RetryPolicy(retries=1,
                                                           backoff_s=0.0))
        with faults.inject(plan):
            executor.run_outcomes(specs[:3])
        summary = executor.summary()
        assert "1 failed" in summary
        assert "1 retries" in summary


# ----------------------------------------------------------------------
# Chaos acceptance: the ISSUE's end-to-end scenario
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestChaosAcceptance:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_30_spec_sweep_survives_3_failures_and_a_crash(
            self, tmp_path, specs, clean_results, backend):
        """30 specs, 3 injected permanent failures, plus 1 crashing
        worker on the process backend (a SIGKILLed thread would take
        the coordinator down, so the thread leg substitutes a fourth
        permanent failure): the other 26 complete, and a --resume
        replay is bit-identical without re-executing anything."""
        assert len(specs) == 30
        doomed = (4, 13, 22)
        crasher = 8
        crash_kind = (faults.KIND_CRASH if backend == "process"
                      else faults.KIND_FAIL)
        plan = faults.FaultPlan(faults=tuple(
            [fail_fault(specs[i]) for i in doomed]
            + [faults.Fault.for_spec(specs[crasher], kind=crash_kind,
                                     attempts=())]))
        cache = ResultCache(tmp_path / "cache")
        executor = SweepExecutor(
            jobs=2, backend=backend, cache=cache,
            journal=SweepJournal.beside(cache.root),
            retry=RetryPolicy(retries=1, backoff_s=0.0, max_crashes=2))
        with faults.inject(plan):
            outcome = executor.run_outcomes(specs)

        counts = outcome.counts()
        assert counts["ok"] == 26
        assert counts["failed"] == 4  # 3 injected + the crasher
        for index in doomed:
            assert outcome.outcomes[index].attempts == 2  # retried once
        if backend == "process":
            assert "poison" in outcome.outcomes[crasher].error
            assert executor.last.crashes >= 2
        survivors = [r for i, r in enumerate(outcome.results)
                     if i not in (*doomed, crasher)]
        expected = [r for i, r in enumerate(clean_results)
                    if i not in (*doomed, crasher)]
        assert serialize(survivors) == serialize(expected)

        # --resume: journaled failures are skipped, the 26 completed
        # cells replay from cache, results bit-identical, 0 executed.
        resumed = SweepExecutor(
            jobs=2, backend=backend, cache=ResultCache(cache.root),
            journal=SweepJournal.beside(cache.root), resume=True)
        with faults.inject(plan):
            replay = resumed.run_outcomes(specs)
        assert resumed.last.executed == 0
        assert resumed.last.cache_hits == 26
        assert serialize(replay.results) == serialize(outcome.results)
        for index in (*doomed, crasher):
            assert replay.outcomes[index].status is SpecStatus.SKIPPED


# ----------------------------------------------------------------------
# Journal compaction
# ----------------------------------------------------------------------
class TestCompaction:
    def _journal(self, tmp_path):
        return SweepJournal(tmp_path / "journal.jsonl")

    def _spec(self):
        return RunSpec(workload="vector_seq", size="tiny",
                       mode="standard", iteration=0)

    def test_latest_key_record_survives(self, tmp_path):
        journal = self._journal(tmp_path)
        spec = self._spec()
        journal.record("k1", SpecStatus.FAILED, spec, attempts=1,
                       error="boom")
        journal.record("k1", SpecStatus.OK, spec, attempts=2)
        journal.record("k2", SpecStatus.FAILED, spec, attempts=3,
                       error="dead")
        view_before = journal.load()
        stats = journal.compact()
        assert stats.records_before == 3
        assert stats.records_after == 2
        assert stats.dropped == 1
        assert journal.load() == view_before
        assert journal.load() == {"k1": "ok", "k2": "failed"}

    def test_first_commit_wins_duplicates_dropped(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append_event("commit", node=0, worker="w1", token=1,
                             runtime_s=0.5)
        journal.append_event("commit", node=0, worker="w2", token=2,
                             runtime_s=0.7)  # zombie's late duplicate
        journal.compact()
        commits = [e for e in journal.events() if e["event"] == "commit"]
        assert len(commits) == 1
        assert commits[0]["worker"] == "w1"
        assert commits[0]["token"] == 1

    def test_ephemeral_chatter_folds_behind_commit(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append_event("claim", node=0, worker="w1", token=1)
        for _ in range(20):
            journal.append_event("renew", node=0, worker="w1", token=1)
        journal.append_event("commit", node=0, worker="w1", token=1,
                             runtime_s=0.1)
        # An *uncommitted* node keeps its latest chatter and abandons.
        journal.append_event("claim", node=1, worker="w2", token=1)
        journal.append_event("renew", node=1, worker="w2", token=1)
        journal.append_event("renew", node=1, worker="w2", token=1)
        journal.append_event("abandon", node=1, worker="w2", token=1)
        journal.append_event("claim", node=1, worker="w3", token=2)
        stats = journal.compact()
        events = journal.events()
        node0 = [e for e in events if e.get("node") == 0]
        assert [e["event"] for e in node0] == ["commit"]
        node1 = [e["event"] for e in events if e.get("node") == 1]
        assert node1.count("abandon") == 1  # abandons always kept
        assert node1.count("claim") == 1    # only the latest claim
        assert node1.count("renew") == 1    # only the latest renew
        assert stats.records_after < stats.records_before

    def test_torn_tail_salvaged_during_compaction(self, tmp_path,
                                                  caplog):
        import logging

        journal = self._journal(tmp_path)
        spec = self._spec()
        journal.record("k1", SpecStatus.OK, spec, attempts=1)
        with journal.path.open("a") as stream:
            stream.write('{"key": "k2", "status": "fai')  # torn append
        with caplog.at_level(logging.WARNING):
            stats = journal.compact()
        assert stats.salvaged == 1
        assert "truncated final line" in caplog.text
        # The rewrite is fully decodable; the torn line is gone.
        for line in journal.path.read_text().splitlines():
            json.loads(line)
        assert journal.load() == {"k1": "ok"}
        assert journal.last_salvaged == 0  # clean after the rewrite

    def test_compaction_is_idempotent(self, tmp_path):
        journal = self._journal(tmp_path)
        spec = self._spec()
        journal.record("k1", SpecStatus.OK, spec, attempts=2)
        journal.record("k1", SpecStatus.OK, spec, attempts=1)
        journal.append_event("claim", node=0, worker="w1", token=1)
        journal.append_event("commit", node=0, worker="w1", token=1)
        journal.compact()
        first = journal.path.read_text()
        second_stats = journal.compact()
        assert journal.path.read_text() == first
        assert second_stats.dropped == 0
        assert second_stats.records_before == second_stats.records_after

    def test_missing_journal_is_a_noop(self, tmp_path):
        journal = self._journal(tmp_path)
        stats = journal.compact()
        assert stats.records_before == 0
        assert stats.bytes_before == 0
        assert not journal.path.exists()

    def test_no_tmp_file_left_behind(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.record("k1", SpecStatus.OK, self._spec(), attempts=1)
        journal.compact()
        assert [p.name for p in tmp_path.iterdir()] == ["journal.jsonl"]

    def test_summary_mentions_shrink(self, tmp_path):
        journal = self._journal(tmp_path)
        spec = self._spec()
        journal.record("k1", SpecStatus.FAILED, spec, attempts=1,
                       error="x")
        journal.record("k1", SpecStatus.OK, spec, attempts=2)
        stats = journal.compact()
        text = stats.summary()
        assert "2 -> 1 records" in text
        assert "salvaged" in text
