"""Determinism battery for the parallel sweep executor.

The executor's contract: serial, thread-parallel, process-parallel and
warm-cache replays of the same spec list all produce byte-identical
serialized RunResults, in spec order.
"""

import json

import pytest

from repro.core.configs import ALL_MODES, TransferMode
from repro.core.experiment import Experiment
from repro.harness.executor import (CacheStats, ResultCache, RunSpec,
                                    SweepExecutor, collect_comparisons,
                                    collect_runsets, expand_grid)
from repro.harness.figures import comparison_sweep
from repro.harness.store import run_to_record
from repro.sim.calibration import default_calibration
from repro.sim.hardware import default_system
from repro.workloads.registry import MICRO_NAMES
from repro.workloads.sizes import SizeClass

GRID = dict(workloads=("vector_seq", "saxpy"),
            sizes=(SizeClass.TINY, SizeClass.SMALL),
            modes=ALL_MODES, iterations=3)


def serialize(runs):
    """Canonical byte-level serialization of a result sequence."""
    return [json.dumps(run_to_record(run, with_counters=True),
                       sort_keys=True) for run in runs]


@pytest.fixture(scope="module")
def specs():
    return expand_grid(**GRID)


@pytest.fixture(scope="module")
def serial_results(specs):
    return SweepExecutor(jobs=1).run(specs)


class TestParallelDeterminism:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_thread_pool_matches_serial(self, specs, serial_results, jobs):
        results = SweepExecutor(jobs=jobs, backend="thread").run(specs)
        assert serialize(results) == serialize(serial_results)

    def test_process_pool_matches_serial(self, specs, serial_results):
        results = SweepExecutor(jobs=4, backend="process").run(specs)
        assert serialize(results) == serialize(serial_results)

    def test_matches_experiment_runner(self):
        """The executor is bit-identical to the classic Experiment."""
        experiment = Experiment(workload="saxpy", size=SizeClass.SMALL,
                                iterations=3)
        old = experiment.run_mode(TransferMode.UVM_PREFETCH)
        specs = expand_grid(("saxpy",), (SizeClass.SMALL,),
                            (TransferMode.UVM_PREFETCH,), iterations=3)
        new = SweepExecutor(jobs=4).run(specs)
        assert serialize(new) == serialize(old.runs)

    def test_results_in_spec_order(self, specs, serial_results):
        for spec, run in zip(specs, serial_results):
            assert (run.workload, run.size, run.mode, run.seed) == \
                (spec.workload, spec.size, spec.mode, spec.iteration)


class TestCache:
    def test_replay_equals_cold(self, tmp_path, specs, serial_results):
        cache = ResultCache(tmp_path / "cache")
        executor = SweepExecutor(jobs=2, cache=cache)
        cold = executor.run(specs)
        assert executor.last.cache_hits == 0
        assert executor.last.executed == len(specs)
        warm = executor.run(specs)
        assert executor.last.cache_hits == len(specs)
        assert executor.last.executed == 0
        assert serialize(cold) == serialize(warm) == serialize(serial_results)

    def test_counters_survive_the_cache(self, tmp_path):
        """Fig. 9/10 payloads replay exactly from cache."""
        spec = RunSpec(workload="gemm", size="small",
                       mode=TransferMode.ASYNC)
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(cache=cache)
        cold = executor.run([spec])[0]
        warm = executor.run([spec])[0]
        assert warm.counters.instructions == cold.counters.instructions
        assert warm.counters.mean_miss_rates() == \
            cold.counters.mean_miss_rates()
        assert [k.kernel_name for k in warm.counters.kernels] == \
            [k.kernel_name for k in cold.counters.kernels]

    def test_hit_miss_stats(self, tmp_path, specs):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(cache=cache)
        executor.run(specs)
        assert cache.stats.misses == len(specs)
        assert cache.stats.stores == len(specs)
        executor.run(specs)
        assert cache.stats.hits == len(specs)
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert len(cache) == len(specs)

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        spec = RunSpec(workload="saxpy", size="tiny",
                       mode=TransferMode.STANDARD)
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(cache=cache)
        first = executor.run([spec])[0]
        key = executor.key_for(spec)
        cache.path_for(key).write_text("{torn record")
        again = executor.run([spec])[0]
        assert serialize([first]) == serialize([again])
        # and the corrupt entry was repaired in place
        assert serialize([cache.get(key)]) == serialize([first])

    def test_clear(self, tmp_path, specs):
        cache = ResultCache(tmp_path)
        SweepExecutor(cache=cache).run(specs[:5])
        assert cache.clear() == 5
        assert len(cache) == 0

    def test_stats_reset(self):
        stats = CacheStats(hits=3, misses=1, stores=1)
        stats.reset()
        assert stats.lookups == 0 and stats.hit_rate == 0.0


class TestInvalidation:
    SPEC = RunSpec(workload="vector_seq", size="tiny",
                   mode=TransferMode.UVM)

    def test_hardware_change_invalidates(self):
        base = SweepExecutor()
        shrunk = SweepExecutor(
            system=default_system().with_gpu(hbm_bytes=16 * 1024 ** 3))
        assert base.key_for(self.SPEC) != shrunk.key_for(self.SPEC)

    def test_calibration_change_invalidates(self):
        import dataclasses
        calib = default_calibration()
        tweaked = dataclasses.replace(
            calib, kernel=dataclasses.replace(calib.kernel,
                                              launch_ns=9_999.0))
        assert SweepExecutor().key_for(self.SPEC) != \
            SweepExecutor(calib=tweaked).key_for(self.SPEC)

    def test_geometry_change_invalidates(self):
        import dataclasses
        base = SweepExecutor()
        other = dataclasses.replace(self.SPEC, blocks=64, threads=128)
        assert base.key_for(self.SPEC) != base.key_for(other)


class TestExpandGrid:
    def test_nested_order(self):
        specs = expand_grid(("vector_seq",), (SizeClass.TINY,),
                            (TransferMode.STANDARD, TransferMode.UVM),
                            iterations=2)
        flat = [(s.mode, s.iteration) for s in specs]
        assert flat == [(TransferMode.STANDARD, 0),
                        (TransferMode.STANDARD, 1),
                        (TransferMode.UVM, 0), (TransferMode.UVM, 1)]

    def test_skips_unsupported_cells(self):
        # gemm declines Mega (explicit allocation exceeds HBM)
        specs = expand_grid(("gemm", "vector_seq"), (SizeClass.MEGA,),
                            (TransferMode.STANDARD,), iterations=1)
        assert [s.workload for s in specs] == ["vector_seq"]

    def test_validates_inputs(self):
        with pytest.raises(ValueError, match="iterations"):
            expand_grid(("saxpy",), (SizeClass.TINY,), iterations=0)
        with pytest.raises(ValueError, match="unknown size"):
            RunSpec(workload="saxpy", size="gigantic",
                    mode=TransferMode.UVM)
        with pytest.raises(ValueError, match="iteration"):
            RunSpec(workload="saxpy", size="tiny",
                    mode=TransferMode.UVM, iteration=-1)

    def test_mode_labels_accepted(self):
        spec = RunSpec(workload="saxpy", size="tiny", mode="uvm")
        assert spec.mode is TransferMode.UVM

    def test_geometry_requires_support(self):
        spec = RunSpec(workload="lud", size="tiny",
                       mode=TransferMode.STANDARD, blocks=32)
        with pytest.raises(ValueError, match="geometry"):
            spec.build_program()


class TestGrouping:
    def test_collect_runsets_preserves_grid_order(self, specs,
                                                  serial_results):
        grouped = collect_runsets(serial_results)
        assert all(len(runs) == GRID["iterations"]
                   for runs in grouped.values())
        assert len(grouped) == 2 * 2 * len(ALL_MODES)

    def test_collect_comparisons_has_baseline(self, specs, serial_results):
        comparisons = collect_comparisons(serial_results)
        for comparison in comparisons.values():
            assert comparison.baseline().mode is TransferMode.STANDARD

    def test_executor_rejects_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            SweepExecutor(backend="fork-bomb")


@pytest.mark.perf
class TestWarmCacheSpeedup:
    def test_fig7_style_sweep_warm_is_5x_faster(self, tmp_path):
        """Acceptance: a repeated fig7/fig8 sweep with a warm cache
        completes >= 5x faster than cold."""
        cache = ResultCache(tmp_path / "cache")
        executor = SweepExecutor(cache=cache)
        kwargs = dict(size=SizeClass.SMALL, iterations=10,
                      executor=executor)
        cold = comparison_sweep(MICRO_NAMES, **kwargs)
        cold_s = executor.last.elapsed_s
        assert executor.last.executed == len(MICRO_NAMES) * 5 * 10
        # Best of two warm replays: the contract is about the cache,
        # not about transient scheduler noise on a loaded test box.
        warm = comparison_sweep(MICRO_NAMES, **kwargs)
        warm_s = executor.last.elapsed_s
        assert executor.last.cache_hits == len(MICRO_NAMES) * 5 * 10
        comparison_sweep(MICRO_NAMES, **kwargs)
        warm_s = min(warm_s, executor.last.elapsed_s)
        for name in MICRO_NAMES:
            for mode in ALL_MODES:
                assert warm[name].normalized_total(mode) == \
                    cold[name].normalized_total(mode)
        assert warm_s * 5.0 <= cold_s, (
            f"warm sweep {warm_s:.3f}s not >=5x faster than cold "
            f"{cold_s:.3f}s")
