"""Hardening satellites of the service PR.

Covers: the ``delay`` / ``flaky_io`` fault kinds, the executor's
flaky-read retry, the quarantine-race fix in
:class:`~repro.harness.executor.ResultCache`, the durable journal with
explicit torn-tail salvage, and the ``isolate`` crash-containment flag.
"""

import json
import logging
import os
import time

import pytest

from repro.harness import faults
from repro.harness.executor import ResultCache, RunSpec, SweepExecutor
from repro.harness.resilience import RetryPolicy, SpecStatus, SweepJournal
from repro.harness.store import run_to_record

FAST = RetryPolicy(retries=0, backoff_s=0.0)


def spec_for(iteration=0, workload="saxpy", size="tiny", mode="standard"):
    return RunSpec(workload=workload, size=size, mode=mode,
                   iteration=iteration)


def serialize(run):
    return json.dumps(run_to_record(run, with_counters=True),
                      sort_keys=True)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faults.clear()
    yield
    faults.clear()


# ----------------------------------------------------------------------
# delay faults
# ----------------------------------------------------------------------
class TestDelayFault:
    def test_delay_sleeps_then_runs_normally(self):
        spec = spec_for(workload="vector_seq")
        faults.install(faults.FaultPlan(faults=(
            faults.Fault.for_spec(spec, kind=faults.KIND_DELAY,
                                  attempts=(1,), delay_s=0.08),)))
        executor = SweepExecutor(jobs=1, retry=FAST)
        started = time.perf_counter()
        outcome = executor.run_outcomes([spec])
        elapsed = time.perf_counter() - started
        assert outcome.complete
        assert elapsed >= 0.08  # the spec ran, but slowly

    def test_delayed_result_is_bit_identical(self):
        spec = spec_for(workload="vector_seq")
        clean = SweepExecutor(jobs=1, retry=FAST).run([spec])
        faults.install(faults.FaultPlan(faults=(
            faults.Fault.for_spec(spec, kind=faults.KIND_DELAY,
                                  attempts=(), delay_s=0.01),)))
        slow = SweepExecutor(jobs=1, retry=FAST).run([spec])
        assert serialize(clean[0]) == serialize(slow[0])

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="delay_s"):
            faults.Fault(kind=faults.KIND_DELAY, workload="saxpy",
                         size="tiny", mode="standard", delay_s=-0.1)

    def test_json_roundtrip_carries_delay(self):
        plan = faults.FaultPlan(faults=(
            faults.Fault(kind=faults.KIND_DELAY, workload="saxpy",
                         size="tiny", mode="standard", delay_s=0.7),))
        assert faults.FaultPlan.from_json(plan.to_json()) == plan

    def test_json_without_delay_field_defaults(self):
        # Pre-upgrade payloads (no delay_s key) must still parse.
        payload = json.dumps([{
            "kind": faults.KIND_FAIL, "workload": "saxpy",
            "size": "tiny", "mode": "standard", "iteration": 0,
            "attempts": [1], "hang_s": 30.0}])
        plan = faults.FaultPlan.from_json(payload)
        assert plan.faults[0].delay_s == 0.05


# ----------------------------------------------------------------------
# flaky_io faults + the executor's read retry
# ----------------------------------------------------------------------
class TestFlakyIOFault:
    def test_injected_error_is_an_oserror(self):
        assert issubclass(faults.InjectedIOError, OSError)

    def test_fires_on_scheduled_read_counts(self):
        spec = spec_for()
        faults.install(faults.FaultPlan(faults=(
            faults.Fault.for_spec(spec, kind=faults.KIND_FLAKY_IO,
                                  attempts=(2,)),)))
        faults.maybe_flaky_io(spec)  # read 1: fine
        with pytest.raises(faults.InjectedIOError):
            faults.maybe_flaky_io(spec)  # read 2: scheduled failure
        faults.maybe_flaky_io(spec)  # read 3: fine again

    def test_empty_attempts_means_every_read_fails(self):
        spec = spec_for()
        faults.install(faults.FaultPlan(faults=(
            faults.Fault.for_spec(spec, kind=faults.KIND_FLAKY_IO,
                                  attempts=()),)))
        for _ in range(3):
            with pytest.raises(faults.InjectedIOError):
                faults.maybe_flaky_io(spec)

    def test_other_specs_unaffected(self):
        spec = spec_for()
        faults.install(faults.FaultPlan(faults=(
            faults.Fault.for_spec(spec, kind=faults.KIND_FLAKY_IO,
                                  attempts=()),)))
        faults.maybe_flaky_io(spec_for(iteration=5))  # no raise

    def test_maybe_fire_ignores_flaky_io(self):
        spec = spec_for()
        faults.install(faults.FaultPlan(faults=(
            faults.Fault.for_spec(spec, kind=faults.KIND_FLAKY_IO,
                                  attempts=()),)))
        faults.maybe_fire(spec, 1)  # execution path: no raise

    def test_install_resets_read_counters(self):
        spec = spec_for()
        plan = faults.FaultPlan(faults=(
            faults.Fault.for_spec(spec, kind=faults.KIND_FLAKY_IO,
                                  attempts=(1,)),))
        faults.install(plan)
        with pytest.raises(faults.InjectedIOError):
            faults.maybe_flaky_io(spec)
        faults.install(plan)  # fresh battery, fresh counters
        with pytest.raises(faults.InjectedIOError):
            faults.maybe_flaky_io(spec)


class TestFlakyReadRetry:
    def _warm(self, tmp_path, spec):
        cache = ResultCache(tmp_path / "cache")
        first = SweepExecutor(jobs=1, cache=cache, retry=FAST).run([spec])
        return cache, serialize(first[0])

    def test_transient_error_still_served_from_cache(self, tmp_path):
        spec = spec_for(workload="vector_seq")
        cache, baseline = self._warm(tmp_path, spec)
        faults.install(faults.FaultPlan(faults=(
            faults.Fault.for_spec(spec, kind=faults.KIND_FLAKY_IO,
                                  attempts=(1,)),)))
        executor = SweepExecutor(jobs=1, cache=cache, retry=FAST)
        outcome = executor.run_outcomes([spec])
        assert outcome.outcomes[0].from_cache  # one retry absorbed it
        assert serialize(outcome.outcomes[0].result) == baseline

    def test_permanent_error_degrades_to_recompute(self, tmp_path):
        spec = spec_for(workload="vector_seq")
        cache, baseline = self._warm(tmp_path, spec)
        faults.install(faults.FaultPlan(faults=(
            faults.Fault.for_spec(spec, kind=faults.KIND_FLAKY_IO,
                                  attempts=()),)))
        executor = SweepExecutor(jobs=1, cache=cache, retry=FAST)
        outcome = executor.run_outcomes([spec])
        assert outcome.complete
        assert not outcome.outcomes[0].from_cache  # degraded to a miss
        # ... but determinism makes the recomputed result identical.
        assert serialize(outcome.outcomes[0].result) == baseline


# ----------------------------------------------------------------------
# quarantine race (ResultCache)
# ----------------------------------------------------------------------
class TestQuarantineRace:
    KEY = "ab" + "0" * 62

    def _corrupt_entry(self, root):
        cache = ResultCache(root)
        path = cache.path_for(self.KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"torn":')
        return cache, path

    def test_winner_quarantines_and_counts(self, tmp_path):
        cache, path = self._corrupt_entry(tmp_path / "cache")
        assert cache.get(self.KEY) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()

    def test_race_loser_counts_nothing(self, tmp_path, monkeypatch):
        cache, path = self._corrupt_entry(tmp_path / "cache")

        def lose_the_race(_self, _target):
            raise FileNotFoundError("another reader renamed it first")

        monkeypatch.setattr(type(path), "replace", lose_the_race)
        assert cache.get(self.KEY) is None  # degrades to a miss
        assert cache.stats.corrupt == 0  # the *winner* counts, not us
        assert cache.stats.misses == 1

    def test_sequential_readers_count_once_total(self, tmp_path):
        root = tmp_path / "cache"
        first, _ = self._corrupt_entry(root)
        second = ResultCache(root)
        assert first.get(self.KEY) is None
        assert second.get(self.KEY) is None  # entry already moved aside
        assert first.stats.corrupt + second.stats.corrupt == 1

    def test_unlink_fallback_reports_win(self, tmp_path, monkeypatch):
        cache, path = self._corrupt_entry(tmp_path / "cache")

        def cross_device(_self, _target):
            raise OSError("EXDEV: cross-device rename")

        monkeypatch.setattr(type(path), "replace", cross_device)
        assert cache.get(self.KEY) is None
        assert cache.stats.corrupt == 1  # unlinked instead; still a win
        assert not path.exists()


# ----------------------------------------------------------------------
# put races: first commit wins on the *write* path too
# ----------------------------------------------------------------------
class TestPutRace:
    """The PR-8 quarantine-race discipline, extended to ``put``."""

    def _run(self, workload="vector_seq"):
        spec = spec_for(workload=workload)
        return SweepExecutor(jobs=1, retry=FAST).run([spec])[0]

    def test_first_commit_wins(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run = self._run()
        key = "cd" + "0" * 62
        assert cache.put(key, run) is True
        assert cache.put(key, run) is False
        assert cache.stats.stores == 1
        assert cache.stats.duplicates == 1
        assert json.loads(cache.path_for(key).read_text()) == \
            run_to_record(run, with_counters=True)

    def test_loser_never_rewrites_winner_bytes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run = self._run()
        key = "cd" + "1" * 62
        cache.put(key, run)
        path = cache.path_for(key)
        stat_before = path.stat()
        time.sleep(0.02)
        cache.put(key, run)  # duplicate publish
        stat_after = path.stat()
        assert stat_after.st_mtime_ns == stat_before.st_mtime_ns
        assert stat_after.st_ino == stat_before.st_ino

    def test_threads_racing_put_commit_exactly_once(self, tmp_path):
        import threading

        cache = ResultCache(tmp_path / "cache")
        run = self._run()
        key = "cd" + "2" * 62
        outcomes = []
        barrier = threading.Barrier(8)

        def racer():
            barrier.wait()
            outcomes.append(cache.put(key, run))

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes.count(True) == 1
        assert outcomes.count(False) == 7
        assert cache.stats.stores == 1
        assert cache.stats.duplicates == 7
        # The entry parses cleanly — no interleaved bytes.
        assert cache.get(key) is not None
        assert cache.stats.corrupt == 0

    def test_no_tmp_litter_after_races(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run = self._run()
        key = "cd" + "3" * 62
        for _ in range(3):
            cache.put(key, run)
        litter = [p for p in cache.path_for(key).parent.iterdir()
                  if p.name != cache.path_for(key).name]
        assert litter == []

    def test_no_hardlink_fallback_still_atomic(self, tmp_path,
                                               monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        run = self._run()
        key = "cd" + "4" * 62

        def no_links(_src, _dst):
            raise OSError("EPERM: filesystem without hard links")

        monkeypatch.setattr(os, "link", no_links)
        assert cache.put(key, run) is True  # degrades to rename
        assert cache.stats.stores == 1
        assert json.loads(cache.path_for(key).read_text()) == \
            run_to_record(run, with_counters=True)


# ----------------------------------------------------------------------
# durable journal + salvage
# ----------------------------------------------------------------------
class TestDurableJournal:
    def test_durable_fsyncs_every_record(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (synced.append(fd), real_fsync(fd)))
        journal = SweepJournal(tmp_path / "j.jsonl", durable=True)
        journal.record("k1", SpecStatus.OK)
        journal.record("k2", SpecStatus.FAILED, error="boom")
        assert len(synced) == 2

    def test_default_journal_does_not_fsync(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record("k1", SpecStatus.OK)
        assert not synced

    def test_beside_passes_durable_through(self, tmp_path):
        journal = SweepJournal.beside(tmp_path, durable=True)
        assert journal.durable
        assert not SweepJournal.beside(tmp_path).durable

    def test_accepts_string_statuses(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record("k1", "pending")
        journal.record("k2", SpecStatus.OK)
        assert journal.load() == {"k1": "pending", "k2": "ok"}
        assert journal.failed_keys() == {}  # pending is not terminal

    def test_spec_payload_carries_full_coordinates(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        spec = RunSpec(workload="vector_seq", size="tiny",
                       mode="standard", iteration=3, base_seed=77,
                       blocks=4, threads=128, seed_salt=":sweep")
        journal.record("k1", "pending", spec=spec)
        payload = journal.latest_entries()["k1"]["spec"]
        assert payload == {
            "workload": "vector_seq", "size": "tiny",
            "mode": "standard", "iteration": 3, "base_seed": 77,
            "blocks": 4, "threads": 128, "smem_carveout_bytes": None,
            "seed_salt": ":sweep"}


class TestJournalSalvage:
    def _line(self, key, status="ok"):
        return json.dumps({"key": key, "status": status}) + "\n"

    def test_truncated_final_line_salvaged_with_warning(self, tmp_path,
                                                        caplog):
        path = tmp_path / "j.jsonl"
        path.write_text(self._line("k1") + self._line("k2")
                        + '{"key": "k3", "sta')  # torn mid-append
        journal = SweepJournal(path)
        with caplog.at_level(logging.WARNING,
                             logger="repro.harness.resilience"):
            loaded = journal.load()
        assert loaded == {"k1": "ok", "k2": "ok"}
        assert journal.last_salvaged == 1
        assert "truncated final line" in caplog.text

    def test_midfile_corruption_flagged_as_bit_rot(self, tmp_path,
                                                   caplog):
        path = tmp_path / "j.jsonl"
        path.write_text(self._line("k1") + "garbage not json\n"
                        + self._line("k2"))
        journal = SweepJournal(path)
        with caplog.at_level(logging.WARNING,
                             logger="repro.harness.resilience"):
            loaded = journal.load()
        assert loaded == {"k1": "ok", "k2": "ok"}
        assert journal.last_salvaged == 1
        assert "bit rot" in caplog.text
        assert "line 2" in caplog.text

    def test_clean_file_salvages_nothing(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(self._line("k1") + self._line("k2", "failed"))
        journal = SweepJournal(path)
        assert len(journal.load()) == 2
        assert journal.last_salvaged == 0

    def test_missing_file_loads_empty(self, tmp_path):
        journal = SweepJournal(tmp_path / "absent.jsonl")
        assert journal.latest_entries() == {}
        assert journal.last_salvaged == 0


# ----------------------------------------------------------------------
# isolate: crash containment for single-spec dispatch
# ----------------------------------------------------------------------
class TestIsolate:
    def test_default_stays_inline(self):
        assert SweepExecutor(jobs=1).isolate is False

    def test_single_crash_spec_cannot_kill_coordinator(self, tmp_path):
        # Without isolate, a jobs=1 single-spec sweep runs *inline*: a
        # crash fault would SIGKILL this very process. isolate=True is
        # the service's containment contract — the spec is quarantined,
        # the coordinator survives.
        spec = spec_for(workload="vector_seq")
        faults.install(faults.FaultPlan(faults=(
            faults.Fault.for_spec(spec, kind=faults.KIND_CRASH,
                                  attempts=()),)))
        executor = SweepExecutor(
            jobs=1, backend="process", isolate=True,
            retry=RetryPolicy(retries=0, backoff_s=0.0, max_crashes=2))
        outcome = executor.run_outcomes([spec], strict=False)
        assert outcome.outcomes[0].status is SpecStatus.FAILED
        assert "quarantined" in (outcome.outcomes[0].error or "")
