"""Sensitivity sweep tests (Figs. 11-13)."""

import pytest

from repro.core.configs import TransferMode
from repro.harness.sensitivity import (blocks_sensitivity,
                                       carveout_sensitivity,
                                       normalized_sweep, render_sweep,
                                       threads_sensitivity)

MODES = (TransferMode.STANDARD, TransferMode.ASYNC,
         TransferMode.UVM_PREFETCH)


class TestBlocksSweep:
    def test_blocks_insensitive_in_saturated_band(self):
        """Fig. 11 / Takeaway 4: block count barely matters once the
        grid saturates the GPU."""
        data = blocks_sensitivity(blocks=(4096, 1024), iterations=3,
                                  modes=(TransferMode.STANDARD,))
        normalized = normalized_sweep(data)
        assert normalized[1024]["standard"] == pytest.approx(1.0, abs=0.05)


class TestThreadsSweep:
    def test_threads_sensitive_below_128(self):
        """Fig. 12 / Takeaway 4: few threads per block slow the kernel
        by integer factors."""
        data = threads_sensitivity(threads=(256, 32), iterations=3,
                                   modes=(TransferMode.STANDARD,))
        normalized = normalized_sweep(data, baseline_key=256)
        assert normalized[32]["standard"] > 1.2

    def test_async_benefit_grows_at_low_threads(self):
        """Paper: async gains 1.01 % at 1024 threads, 16.51 % at 32."""
        data = threads_sensitivity(threads=(1024, 32), iterations=3,
                                   modes=(TransferMode.STANDARD,
                                          TransferMode.ASYNC))
        gain_high = 1 - (data[1024]["async"].mean_total_ns()
                         / data[1024]["standard"].mean_total_ns())
        gain_low = 1 - (data[32]["async"].mean_total_ns()
                        / data[32]["standard"].mean_total_ns())
        assert gain_low > gain_high


class TestCarveoutSweep:
    def test_tiny_carveout_hurts_async(self):
        """Takeaway 5: no room to double-buffer."""
        data = carveout_sensitivity(carveouts_kb=(2, 32), iterations=3,
                                    modes=(TransferMode.ASYNC,))
        assert data[2]["async"].mean_total_ns() > \
            data[32]["async"].mean_total_ns()

    def test_huge_carveout_hurts_uvm(self):
        """Takeaway 5: too little L1 left for the prefetch streams."""
        data = carveout_sensitivity(carveouts_kb=(32, 128), iterations=3,
                                    modes=(TransferMode.UVM_PREFETCH,))
        assert data[128]["uvm_prefetch"].mean_total_ns() > \
            data[32]["uvm_prefetch"].mean_total_ns()

    def test_standard_insensitive_to_carveout(self):
        data = carveout_sensitivity(carveouts_kb=(4, 64), iterations=3,
                                    modes=(TransferMode.STANDARD,))
        ratio = (data[64]["standard"].mean_total_ns()
                 / data[4]["standard"].mean_total_ns())
        assert ratio == pytest.approx(1.0, abs=0.05)


class TestRender:
    def test_render_sweep(self):
        data = blocks_sensitivity(blocks=(4096,), iterations=2, modes=MODES)
        text = render_sweep(normalized_sweep(data), "#blocks", "Fig 11")
        assert "#blocks" in text
        assert "4096" in text
