"""Axis-fusion equivalence battery: fused vs per-cell vs scalar.

The axis-fused family replay (:func:`repro.sim.vecgrid.compile_family`
/ :func:`replay_family`) evaluates a whole sensitivity axis as one 2-D
array program, gated by a family-level classifier that proves the
entire family uncontended from one representative cell.  The contract
is the same as every other engine shortcut in this repo: **bitwise**
equality, no tolerances — a fused sweep must be indistinguishable from
PR 7's per-cell vector replay (``SweepExecutor(..., fuse=False)``) and
from the scalar fast engine, which the three-way battery in
``test_differential.py`` already pins to the event-driven reference.

Three layers:

* a curated 9-workload x 5-mode battery along the threads axis,
* the exact figure grids (boundary cells at both family edges), and
* a deliberately-contended system (one DMA engine) where the
  classifier must *refuse* to fuse and still produce bitwise results
  through the per-cell/event fallback,

plus a hypothesis fuzz over random (workload, axis, points, mode,
iterations) families.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configs import TransferMode
from repro.harness.executor import SweepExecutor, expand_grid
# Aliased: pyproject collects `bench_*` callables as tests.
from repro.harness.regression import bench_grid_specs as grid_specs
from repro.sim.hardware import default_system
from repro.workloads.registry import get_workload
from repro.workloads.sizes import SizeClass

MODES = list(TransferMode)

# Same population as the engine battery: micro kernels exercise
# explicit trains and prefetch trains, applications add demand
# migration, oversubscription, and iterative launch_repeated.
BATTERY = [
    ("vector_seq", SizeClass.MEGA),
    ("vector_rand", SizeClass.MEGA),
    ("saxpy", SizeClass.MEGA),
    ("gemm", SizeClass.LARGE),
    ("hotspot", SizeClass.LARGE),
    ("kmeans", SizeClass.LARGE),
    ("srad", SizeClass.LARGE),
    ("pathfinder", SizeClass.LARGE),
    ("knn", SizeClass.LARGE),
]

THREAD_POINTS = (64, 256, 1024)
CARVEOUT_POINTS_KB = (2, 32, 128)


def axis_family(workload, size, mode, iterations=2):
    """One family: a single sensitivity axis for one (workload, mode).

    Workloads with ``program_with_geometry`` (the vector micros) sweep
    the threads axis; every other workload sweeps the carveout axis,
    which never touches program construction.
    """
    if hasattr(get_workload(workload), "program_with_geometry"):
        overrides = [{"blocks": 64, "threads": t} for t in THREAD_POINTS]
    else:
        overrides = [{"smem_carveout_bytes": kb * 1024}
                     for kb in CARVEOUT_POINTS_KB]
    specs = []
    for override in overrides:
        specs.extend(expand_grid(
            [workload], [size], [mode], iterations=iterations,
            seed_salt=":sweep", **override))
    return specs


def sweep(specs, engine, fuse=True, system=None):
    """Run one engine over the specs; return (executor, result dicts).

    ``dataclasses.asdict`` flattens every timing field and the full
    counter report, so list equality below is bitwise across all of
    them at once.
    """
    executor = SweepExecutor(jobs=1, engine=engine, fuse=fuse,
                             system=system)
    results = executor.run(specs)
    return executor, [dataclasses.asdict(result) for result in results]


class TestBattery:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    @pytest.mark.parametrize("name,size", BATTERY,
                             ids=[w for w, _ in BATTERY])
    def test_fused_equals_per_cell_equals_scalar(self, name, size, mode):
        if not get_workload(name).supports(size):
            pytest.skip(f"{name} undefined at {size.label}")
        specs = axis_family(name, size, mode)
        fused_exec, fused = sweep(specs, "vector", fuse=True)
        _, per_cell = sweep(specs, "vector", fuse=False)
        _, scalar = sweep(specs, "fast")
        assert fused == per_cell
        assert fused == scalar
        # The family must at least have reached the classifier: either
        # it fused or it rerouted with a recorded rule — never silently
        # fell off the fused path.
        stats = fused_exec.last
        assert stats.families_fused + stats.families_rerouted >= 1, \
            stats.summary()


class TestFigureGrids:
    """The exact bench grids, including both family-edge cells."""

    @pytest.mark.parametrize("grid", ("fig12", "fig11", "fig13"))
    def test_grid_bitwise_and_fully_fused(self, grid):
        specs = grid_specs(iterations=3, grid=grid)
        fused_exec, fused = sweep(specs, "vector", fuse=True)
        _, per_cell = sweep(specs, "vector", fuse=False)
        _, scalar = sweep(specs, "fast")
        assert fused == per_cell
        assert fused == scalar
        # One family per mode, all provably uncontended: the figure
        # grids are the workloads the fused path exists for.
        assert fused_exec.last.families_fused == len(MODES)
        assert fused_exec.last.families_rerouted == 0

    def test_family_edge_cells_present_and_identical(self):
        """Boundary cells (first/last axis point) settle bitwise.

        Edge cells are where a monotonicity argument would slip first;
        compare them spec-by-spec rather than only as a whole list.
        """
        specs = grid_specs(iterations=2, grid="fig12")
        edge_threads = {min(s.threads for s in specs),
                        max(s.threads for s in specs)}
        _, fused = sweep(specs, "vector", fuse=True)
        _, scalar = sweep(specs, "fast")
        compared = 0
        for spec, ours, theirs in zip(specs, fused, scalar):
            if spec.threads in edge_threads:
                assert ours == theirs, spec
                compared += 1
        assert compared == len(MODES) * 2 * 2  # 2 edges x 2 iterations


class TestContendedFamilies:
    def test_single_copy_engine_reroutes_and_stays_bitwise(self):
        """A system with one DMA engine makes saxpy's two UVM demand
        streams queue: the classifier must reroute (never fuse a
        contended family) and the fallback path must still match the
        scalar engine bitwise on the *same* contended system."""
        base = default_system()
        system = dataclasses.replace(
            base, link=dataclasses.replace(base.link, copy_engines=1))
        specs = axis_family("saxpy", SizeClass.LARGE,
                            TransferMode.UVM)
        fused_exec, fused = sweep(specs, "vector", fuse=True,
                                  system=system)
        _, scalar = sweep(specs, "fast", system=system)
        assert fused == scalar
        stats = fused_exec.last
        rerouted = stats.families_rerouted \
            + sum(stats.reroute_rules.values())
        assert rerouted >= 1, stats.summary()
        assert stats.families_fused == 0, stats.summary()


# ----------------------------------------------------------------------
# Hypothesis fuzz over random single-axis families
# ----------------------------------------------------------------------
FUZZ_WORKLOADS = ("vector_seq", "vector_rand", "saxpy")


@st.composite
def families(draw):
    mode = draw(st.sampled_from(MODES))
    iterations = draw(st.integers(min_value=1, max_value=3))
    axis = draw(st.sampled_from(("threads", "blocks", "carveout")))
    # Geometry axes need program_with_geometry (the vector micros);
    # the carveout axis works for any workload.
    workload = draw(st.sampled_from(
        FUZZ_WORKLOADS if axis == "carveout" else FUZZ_WORKLOADS[:2]))
    if axis == "threads":
        points = draw(st.lists(
            st.sampled_from((32, 64, 128, 256, 512, 1024)),
            min_size=2, max_size=4, unique=True))
        overrides = [{"blocks": 64, "threads": p} for p in points]
    elif axis == "blocks":
        points = draw(st.lists(
            st.sampled_from((16, 64, 256, 1024, 4096)),
            min_size=2, max_size=4, unique=True))
        overrides = [{"blocks": p, "threads": 256} for p in points]
    else:
        points = draw(st.lists(
            st.sampled_from((2, 8, 32, 128)),
            min_size=2, max_size=4, unique=True))
        overrides = [{"smem_carveout_bytes": p * 1024} for p in points]
    specs = []
    for override in overrides:
        specs.extend(expand_grid(
            [workload], [SizeClass.LARGE], [mode],
            iterations=iterations, seed_salt=":sweep", **override))
    return specs


@given(specs=families())
@settings(max_examples=25, deadline=None)
def test_fuzz_fused_three_way(specs):
    """Fused == per-cell == scalar over random axis families.

    Families the classifier reroutes are equally valid examples: the
    equality must hold whichever path settled each spec."""
    _, fused = sweep(specs, "vector", fuse=True)
    _, per_cell = sweep(specs, "vector", fuse=False)
    _, scalar = sweep(specs, "fast")
    assert fused == per_cell
    assert fused == scalar
