"""Table regenerator tests."""

from repro.harness.report import format_ns, format_pct, render_series, render_table
from repro.harness.tables import (table1_hardware, table2_rows, table2_suite,
                                  table3_rows, table3_sizes)

import pytest


class TestReport:
    def test_render_table_aligns(self):
        text = render_table(("a", "bb"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(("a", "b"), [("1",)])

    def test_render_series(self):
        text = render_series("demo", [1, 2], [10.0, 20.0])
        assert "demo" in text
        assert "#" in text

    def test_format_ns(self):
        assert format_ns(1.5e9) == "1.50 s"
        assert format_ns(2.5e6) == "2.50 ms"
        assert format_ns(3.5e3) == "3.50 us"
        assert format_ns(999) == "999 ns"

    def test_format_pct(self):
        assert format_pct(0.21) == "21.00 %"
        assert format_pct(0.21, signed=True) == "+21.00 %"


class TestTables:
    def test_table1_mentions_hardware(self):
        text = table1_hardware()
        assert "A100" in text and "EPYC" in text

    def test_table2_has_21_rows(self):
        rows = table2_rows()
        assert len(rows) == 21
        names = [row[2] for row in rows]
        assert "vector_seq" in names and "yolov3" in names

    def test_table2_renders(self):
        assert "Needleman-Wunsch" in table2_suite()

    def test_table3_has_6_rows(self):
        rows = table3_rows()
        assert len(rows) == 6
        assert rows[0][0] == "Tiny"
        assert rows[-1][1] == "32 GB"

    def test_table3_renders(self):
        text = table3_sizes()
        assert "1D grid" in text
