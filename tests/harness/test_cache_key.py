"""Property-based tests for the content-addressed cache key.

Three properties (hypothesis-driven where available):

1. equal specs hash equal (the key is a pure function of the spec);
2. perturbing any single field changes the key (no aliasing);
3. keys are stable across process boundaries and hash seeds (no
   ``hash()``/``id()`` leakage).
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.configs import ALL_MODES, TransferMode
from repro.harness.executor import (RunSpec, cache_key, canonical,
                                    fingerprint)
from repro.sim.hardware import default_system

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the dev env
    HAVE_HYPOTHESIS = False

# Keep the searched grid cheap: keys build the workload program once
# per (workload, size, geometry) and memoize it.
WORKLOADS = ("vector_seq", "vector_rand", "saxpy")
SIZES = ("tiny", "small", "medium")


def make_spec(workload="vector_seq", size="tiny",
              mode=TransferMode.STANDARD, iteration=0, base_seed=1234,
              smem_carveout_bytes=None, seed_salt=""):
    return RunSpec(workload=workload, size=size, mode=mode,
                   iteration=iteration, base_seed=base_seed,
                   smem_carveout_bytes=smem_carveout_bytes,
                   seed_salt=seed_salt)


if HAVE_HYPOTHESIS:
    spec_strategy = st.builds(
        make_spec,
        workload=st.sampled_from(WORKLOADS),
        size=st.sampled_from(SIZES),
        mode=st.sampled_from(ALL_MODES),
        iteration=st.integers(min_value=0, max_value=40),
        base_seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
        smem_carveout_bytes=st.sampled_from((None, 8 * 1024, 32 * 1024)),
        seed_salt=st.sampled_from(("", ":sweep")),
    )

    class TestKeyProperties:
        @settings(max_examples=40, deadline=None)
        @given(spec=spec_strategy)
        def test_equal_specs_hash_equal(self, spec):
            clone = dataclasses.replace(spec)
            assert spec is not clone
            assert cache_key(spec) == cache_key(clone)

        @settings(max_examples=40, deadline=None)
        @given(spec=spec_strategy, other=spec_strategy)
        def test_distinct_specs_hash_distinct(self, spec, other):
            if spec == other:
                assert cache_key(spec) == cache_key(other)
            else:
                assert cache_key(spec) != cache_key(other)

        @settings(max_examples=25, deadline=None)
        @given(spec=spec_strategy,
               field=st.sampled_from(("workload", "size", "mode",
                                      "iteration", "base_seed",
                                      "smem_carveout_bytes", "seed_salt")))
        def test_any_field_perturbation_changes_key(self, spec, field):
            perturbed = {
                "workload": lambda s: dataclasses.replace(
                    s, workload=[w for w in WORKLOADS
                                 if w != s.workload][0]),
                "size": lambda s: dataclasses.replace(
                    s, size=[z for z in SIZES if z != s.size][0]),
                "mode": lambda s: dataclasses.replace(
                    s, mode=[m for m in ALL_MODES if m is not s.mode][0]),
                "iteration": lambda s: dataclasses.replace(
                    s, iteration=s.iteration + 1),
                "base_seed": lambda s: dataclasses.replace(
                    s, base_seed=s.base_seed + 1),
                "smem_carveout_bytes": lambda s: dataclasses.replace(
                    s, smem_carveout_bytes=(s.smem_carveout_bytes or 0)
                    + 1024),
                "seed_salt": lambda s: dataclasses.replace(
                    s, seed_salt=s.seed_salt + "x"),
            }[field](spec)
            assert cache_key(perturbed) != cache_key(spec)
else:  # randomized fallback when hypothesis is unavailable
    class TestKeyProperties:  # type: ignore[no-redef]
        def test_equal_specs_hash_equal(self):
            import random
            rng = random.Random(7)
            for _ in range(40):
                spec = make_spec(workload=rng.choice(WORKLOADS),
                                 size=rng.choice(SIZES),
                                 mode=rng.choice(ALL_MODES),
                                 iteration=rng.randrange(40),
                                 base_seed=rng.randrange(2 ** 31))
                assert cache_key(spec) == \
                    cache_key(dataclasses.replace(spec))

        def test_any_field_perturbation_changes_key(self):
            spec = make_spec()
            for change in (dict(workload="saxpy"), dict(size="small"),
                           dict(mode=TransferMode.UVM), dict(iteration=1),
                           dict(base_seed=1),
                           dict(smem_carveout_bytes=2048),
                           dict(seed_salt=":sweep")):
                assert cache_key(dataclasses.replace(spec, **change)) != \
                    cache_key(spec)


class TestCanonicalization:
    def test_enum_and_dict_normalization(self):
        assert canonical(TransferMode.UVM) == "uvm"
        assert canonical({"b": 2, "a": 1}) == {"a": 1, "b": 2}
        assert canonical((1, [2, 3])) == [1, [2, 3]]

    def test_dataclasses_tagged_by_type(self):
        blob = canonical(make_spec())
        assert blob["__type__"] == "RunSpec"

    def test_unhashable_objects_rejected(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonical(object())

    def test_fingerprint_is_hex_sha256(self):
        digest = fingerprint({"x": 1})
        assert len(digest) == 64
        int(digest, 16)  # parses as hex

    def test_system_fingerprint_covers_nested_fields(self):
        base = default_system()
        assert fingerprint(base) == fingerprint(default_system())
        assert fingerprint(base) != \
            fingerprint(base.with_uvm(page_bytes=64 * 1024))


class TestCrossProcessStability:
    def test_key_stable_across_process_and_hash_seed(self, tmp_path):
        """Keys must not depend on PYTHONHASHSEED or process identity."""
        spec = make_spec(workload="saxpy", size="small",
                         mode=TransferMode.UVM_PREFETCH, iteration=3,
                         base_seed=99)
        here = cache_key(spec)
        script = (
            "from repro.core.configs import TransferMode\n"
            "from repro.harness.executor import RunSpec, cache_key\n"
            "spec = RunSpec(workload='saxpy', size='small',"
            " mode=TransferMode.UVM_PREFETCH, iteration=3, base_seed=99)\n"
            "print(cache_key(spec))\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src)
        for hash_seed in ("0", "424242"):
            env["PYTHONHASHSEED"] = hash_seed
            out = subprocess.run([sys.executable, "-c", script], env=env,
                                 capture_output=True, text=True, check=True)
            assert out.stdout.strip() == here

    def test_key_matches_process_pool_worker(self):
        from concurrent.futures import ProcessPoolExecutor
        spec = make_spec(iteration=7)
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(cache_key, spec).result()
        assert remote == cache_key(spec)

    def test_canonical_payload_is_json_stable(self):
        spec = make_spec()
        a = json.dumps(canonical(spec), sort_keys=True)
        b = json.dumps(canonical(dataclasses.replace(spec)),
                       sort_keys=True)
        assert a == b
