"""Artifact-appendix workflow tests."""

import pytest

from repro.harness.artifact import (ARTIFACT_SCRIPTS, ArtifactResult,
                                    process_perf, run_micro_all,
                                    run_micro_sensitivity,
                                    run_micro_shared, run_real_all)


class TestScripts:
    def test_registry_matches_appendix(self):
        assert set(ARTIFACT_SCRIPTS) == {
            "run_micro_all", "run_real_all", "process_perf",
            "run_micro_sensitivity", "run_micro_shared"}

    def test_run_micro_all_profiling_mode(self):
        result = run_micro_all(iterations=2, profiling=True)
        assert "figure4+5" in result.figures
        assert "figure6" in result.figures
        # --profiling collects only; Fig. 7 rendering is the parse step.
        assert "figure7a" not in result.figures

    def test_run_micro_all_full(self):
        result = run_micro_all(iterations=2)
        assert {"figure4+5", "figure6", "figure7a",
                "figure7b"} <= set(result.figures)

    def test_process_perf(self):
        result = process_perf()
        assert "Fig. 9" in result.figures["figure9"]
        assert "Fig. 10" in result.figures["figure10"]

    def test_run_micro_sensitivity(self):
        result = run_micro_sensitivity(iterations=2)
        assert "figure11" in result.figures
        assert "figure12" in result.figures

    def test_run_micro_shared(self):
        result = run_micro_shared(iterations=2)
        assert "figure13" in result.figures

    @pytest.mark.slow
    def test_run_real_all(self):
        result = run_real_all(iterations=1)
        assert "figure8" in result.figures

    def test_render(self):
        result = ArtifactResult("demo.py", {"figureX": "content"})
        text = result.render()
        assert "demo.py" in text
        assert "content" in text
