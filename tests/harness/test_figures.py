"""Figure data-generator tests (small iteration counts)."""

import pytest

from repro.core.configs import TransferMode
from repro.harness.figures import (comparison_sweep, counter_sweep,
                                   fig4_distributions, fig5_stability,
                                   fig6_mega_breakdown, geomean_improvements,
                                   render_comparison, render_counters,
                                   render_fig5, render_fig6)
from repro.workloads.sizes import SizeClass


@pytest.fixture(scope="module")
def distributions():
    return fig4_distributions(
        iterations=3,
        sizes=(SizeClass.TINY, SizeClass.LARGE),
        workloads=("vector_seq", "saxpy"),
        modes=(TransferMode.STANDARD, TransferMode.UVM),
    )


class TestFig4And5:
    def test_distribution_shape(self, distributions):
        assert set(distributions) == {"tiny", "large"}
        assert set(distributions["tiny"]) == {"vector_seq", "saxpy"}
        assert len(distributions["tiny"]["vector_seq"]["standard"]) == 3

    def test_totals_positive(self, distributions):
        for by_workload in distributions.values():
            for by_mode in by_workload.values():
                for totals in by_mode.values():
                    assert all(t > 0 for t in totals)

    def test_stability_includes_geomean_row(self, distributions):
        stability = fig5_stability(distributions)
        assert "Geo-mean" in stability
        assert set(stability["vector_seq"]) == {"tiny", "large"}

    def test_large_more_stable_than_tiny(self, distributions):
        """Takeaway 1's core claim, on the geomean row."""
        stability = fig5_stability(
            fig4_distributions(iterations=8,
                               sizes=(SizeClass.TINY, SizeClass.LARGE),
                               workloads=("vector_seq",),
                               modes=(TransferMode.STANDARD,)))
        assert stability["Geo-mean"]["large"] < \
            stability["Geo-mean"]["tiny"]

    def test_render_fig5(self, distributions):
        assert "std/mean" in render_fig5(fig5_stability(distributions))


class TestFig6:
    def test_mega_memcpy_varies_more_than_kernel(self):
        breakdowns = fig6_mega_breakdown(iterations=10)
        memcpys = [b["memcpy"] for b in breakdowns]
        kernels = [b["gpu_kernel"] for b in breakdowns]

        def cv(values):
            mean = sum(values) / len(values)
            var = sum((v - mean) ** 2 for v in values) / len(values)
            return var ** 0.5 / mean

        assert cv(memcpys) > cv(kernels)

    def test_render_fig6(self):
        text = render_fig6(fig6_mega_breakdown(iterations=2))
        assert "memcpy" in text


class TestComparisons:
    def test_comparison_sweep_and_render(self):
        comparisons = comparison_sweep(("vector_seq",), SizeClass.LARGE,
                                       iterations=2)
        assert comparisons["vector_seq"].normalized_total(
            TransferMode.STANDARD) == 1.0
        text = render_comparison(comparisons, "demo")
        assert "geo-mean" in text

    def test_geomean_improvements(self):
        comparisons = comparison_sweep(("vector_seq",), SizeClass.LARGE,
                                       iterations=2)
        improvements = geomean_improvements(comparisons)
        assert improvements["standard"] == pytest.approx(0.0)
        assert "uvm_prefetch" in improvements


class TestCounters:
    def test_counter_sweep_keys(self):
        data = counter_sweep(workloads=("gemm",), size=SizeClass.LARGE)
        entry = data["gemm"]["standard"]
        assert {"control", "integer", "fp", "memory", "load_miss",
                "store_miss"} <= set(entry)

    def test_render_counters(self):
        data = counter_sweep(workloads=("gemm",), size=SizeClass.LARGE)
        text = render_counters(data, ("control", "integer"), "Fig 9")
        assert "gemm" in text
