"""Result-store tests."""

import pytest

from repro.core.configs import TransferMode
from repro.core.experiment import Experiment
from repro.harness.store import ResultStore
from repro.workloads.sizes import SizeClass


@pytest.fixture(scope="module")
def comparison():
    return Experiment(workload="saxpy", size=SizeClass.SMALL,
                      iterations=3).run()


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "runs.jsonl")


class TestRoundTrip:
    def test_append_and_reload_runset(self, store, comparison):
        original = comparison.by_mode[TransferMode.UVM]
        assert store.append_runset(original) == 3
        loaded = store.load_runset("saxpy", TransferMode.UVM, "small")
        assert len(loaded) == 3
        assert loaded.mean_total_ns() == pytest.approx(
            original.mean_total_ns())
        assert loaded.mean_breakdown() == pytest.approx(
            original.mean_breakdown())

    def test_reload_full_comparison(self, store, comparison):
        for runs in comparison.by_mode.values():
            store.append_runset(runs)
        loaded = store.load_comparison("saxpy", "small")
        for mode in TransferMode:
            assert loaded.normalized_total(mode) == pytest.approx(
                comparison.normalized_total(mode))

    def test_incremental_appends_accumulate(self, store, comparison):
        runs = comparison.by_mode[TransferMode.STANDARD]
        store.append(runs.runs[0])
        store.append(runs.runs[1])
        assert len(store) == 2


class TestQuery:
    def test_filters(self, store, comparison):
        for runs in comparison.by_mode.values():
            store.append_runset(runs)
        assert len(store.query(mode=TransferMode.ASYNC)) == 3
        assert len(store.query(workload="saxpy")) == 15
        assert store.query(workload="other") == []
        assert store.workloads() == ["saxpy"]

    def test_empty_store(self, store):
        assert len(store) == 0
        assert store.query() == []


class TestRobustness:
    def test_corrupt_line_reported_with_location(self, store, comparison):
        store.append(comparison.by_mode[TransferMode.UVM].runs[0])
        with store.path.open("a") as stream:
            stream.write("{not json\n")
        with pytest.raises(ValueError, match=":2"):
            list(store)

    def test_blank_lines_skipped(self, store, comparison):
        store.append(comparison.by_mode[TransferMode.UVM].runs[0])
        with store.path.open("a") as stream:
            stream.write("\n\n")
        assert len(store) == 1

    def test_version_checked(self, store):
        with store.path.open("a") as stream:
            stream.write('{"v": 99}\n')
        with pytest.raises(ValueError, match="version"):
            list(store)
