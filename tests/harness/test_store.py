"""Result-store tests."""

import json

import pytest

from repro.core.configs import TransferMode
from repro.core.experiment import Experiment
from repro.core.results import RunResult
from repro.harness.store import (ResultStore, record_to_run, run_to_record)
from repro.sim.cache import MissRates
from repro.sim.counters import CounterReport, KernelCounters
from repro.sim.kernel import InstructionMix
from repro.workloads.sizes import SizeClass


@pytest.fixture(scope="module")
def comparison():
    return Experiment(workload="saxpy", size=SizeClass.SMALL,
                      iterations=3).run()


def make_run(mode: TransferMode, size: str, **overrides) -> RunResult:
    """A synthetic run whose fields encode its coordinates."""
    fields = dict(
        workload="synthetic", mode=mode, size=size, seed=7,
        alloc_ns=1.5e8, memcpy_ns=2.25e7, kernel_ns=3.125e6,
        wall_ns=1.75e8, counters=CounterReport(),
        occupancy=0.625, gpu_busy_fraction=0.25,
    )
    fields.update(overrides)
    return RunResult(**fields)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "runs.jsonl")


class TestRoundTrip:
    def test_append_and_reload_runset(self, store, comparison):
        original = comparison.by_mode[TransferMode.UVM]
        assert store.append_runset(original) == 3
        loaded = store.load_runset("saxpy", TransferMode.UVM, "small")
        assert len(loaded) == 3
        assert loaded.mean_total_ns() == pytest.approx(
            original.mean_total_ns())
        assert loaded.mean_breakdown() == pytest.approx(
            original.mean_breakdown())

    def test_reload_full_comparison(self, store, comparison):
        for runs in comparison.by_mode.values():
            store.append_runset(runs)
        loaded = store.load_comparison("saxpy", "small")
        for mode in TransferMode:
            assert loaded.normalized_total(mode) == pytest.approx(
                comparison.normalized_total(mode))

    def test_incremental_appends_accumulate(self, store, comparison):
        runs = comparison.by_mode[TransferMode.STANDARD]
        store.append(runs.runs[0])
        store.append(runs.runs[1])
        assert len(store) == 2


class TestFullSchemaRoundTrip:
    """`query` round trip for every TransferMode x size class."""

    @pytest.mark.parametrize("mode", list(TransferMode),
                             ids=[m.value for m in TransferMode])
    @pytest.mark.parametrize("size",
                             [s.label for s in SizeClass.ordered()])
    def test_every_mode_and_size_round_trips(self, store, mode, size):
        original = make_run(mode, size)
        store.append(original)
        matches = store.query(workload="synthetic", mode=mode, size=size)
        assert len(matches) == 1
        loaded = matches[0]
        assert loaded.mode is mode
        assert loaded.size == size
        for field in ("workload", "seed", "alloc_ns", "memcpy_ns",
                      "kernel_ns", "wall_ns", "occupancy",
                      "gpu_busy_fraction"):
            assert getattr(loaded, field) == getattr(original, field), field
        # the round trip is byte-stable, not merely approximate
        assert json.dumps(run_to_record(loaded), sort_keys=True) == \
            json.dumps(run_to_record(original), sort_keys=True)

    def test_cross_mode_query_keeps_records_apart(self, store):
        for mode in TransferMode:
            for size in SizeClass.ordered():
                store.append(make_run(mode, size.label))
        for mode in TransferMode:
            assert len(store.query(mode=mode)) == len(SizeClass.ordered())
        for size in SizeClass.ordered():
            assert len(store.query(size=size.label)) == len(TransferMode)


class TestOptionalFields:
    """Records written before the optional fields existed still load."""

    def test_missing_occupancy_and_busy_default_to_zero(self, store):
        record = run_to_record(make_run(TransferMode.UVM, "large"))
        for optional in ("occupancy", "gpu_busy_fraction"):
            del record[optional]
        with store.path.open("a") as stream:
            stream.write(json.dumps(record) + "\n")
        (loaded,) = list(store)
        assert loaded.occupancy == 0.0
        assert loaded.gpu_busy_fraction == 0.0
        assert loaded.total_ns == pytest.approx(
            make_run(TransferMode.UVM, "large").total_ns)

    def test_missing_counters_yield_empty_report(self):
        record = run_to_record(make_run(TransferMode.ASYNC, "tiny"))
        assert "counters" not in record  # default stays lean
        loaded = record_to_run(record)
        assert loaded.counters.kernels == []
        assert loaded.counters.mean_occupancy() == 0.0

    def test_counters_round_trip_when_requested(self):
        counters = CounterReport()
        counters.add(KernelCounters(
            kernel_name="k0",
            instructions=InstructionMix(memory=10.0, fp=20.0,
                                        integer=30.0, control=5.0),
            l1=MissRates(load=0.86, store=0.74),
            dram_load_bytes=4096.0, dram_store_bytes=1024.0,
            occupancy=0.5))
        original = make_run(TransferMode.UVM_PREFETCH_ASYNC, "super",
                            counters=counters)
        record = json.loads(json.dumps(
            run_to_record(original, with_counters=True)))
        loaded = record_to_run(record)
        assert loaded.counters.instructions == counters.instructions
        assert loaded.counters.mean_miss_rates() == \
            counters.mean_miss_rates()
        assert loaded.counters.kernels[0].kernel_name == "k0"
        assert loaded.counters.kernels[0].occupancy == 0.5


class TestQuery:
    def test_filters(self, store, comparison):
        for runs in comparison.by_mode.values():
            store.append_runset(runs)
        assert len(store.query(mode=TransferMode.ASYNC)) == 3
        assert len(store.query(workload="saxpy")) == 15
        assert store.query(workload="other") == []
        assert store.workloads() == ["saxpy"]

    def test_empty_store(self, store):
        assert len(store) == 0
        assert store.query() == []


class TestRobustness:
    def test_corrupt_line_reported_with_location(self, store, comparison):
        store.append(comparison.by_mode[TransferMode.UVM].runs[0])
        with store.path.open("a") as stream:
            stream.write("{not json\n")
        with pytest.raises(ValueError, match=":2"):
            list(store)

    def test_blank_lines_skipped(self, store, comparison):
        store.append(comparison.by_mode[TransferMode.UVM].runs[0])
        with store.path.open("a") as stream:
            stream.write("\n\n")
        assert len(store) == 1

    def test_version_checked(self, store):
        with store.path.open("a") as stream:
            stream.write('{"v": 99}\n')
        with pytest.raises(ValueError, match="version"):
            list(store)
