"""Executor-level engine parity, prewarm hoisting, and memo stats.

Complements ``tests/harness/test_differential.py`` (per-run bitwise
equivalence) by exercising the sweep layer: the executor must produce
identical result streams under either engine, must not rebuild a
program that another coordinate already built (prewarm hoisting), and
must surface the phase-memo hit/miss accounting in its summary line.
"""

import json

import pytest

from repro.core.configs import ALL_MODES
from repro.harness.executor import (RunSpec, SweepExecutor,
                                    clear_program_memo, expand_grid)
from repro.harness.store import run_to_record
from repro.sim.phasecache import clear_phase_memos
from repro.workloads.sizes import SizeClass

GRID = dict(workloads=("vector_seq", "saxpy"),
            sizes=(SizeClass.TINY, SizeClass.SMALL),
            modes=ALL_MODES, iterations=3)


def serialize(runs):
    return [json.dumps(run_to_record(run, with_counters=True),
                       sort_keys=True) for run in runs]


@pytest.fixture(scope="module")
def specs():
    return expand_grid(**GRID)


@pytest.fixture(autouse=True)
def _fresh_memos():
    clear_phase_memos()
    clear_program_memo()
    yield
    clear_phase_memos()
    clear_program_memo()


class TestEngineParity:
    def test_fast_sweep_matches_reference_sweep(self, specs):
        ref = SweepExecutor(jobs=1, engine="reference").run(specs)
        fast = SweepExecutor(jobs=1, engine="fast").run(specs)
        assert serialize(fast) == serialize(ref)

    def test_fast_threads_match_fast_serial(self, specs):
        serial = SweepExecutor(jobs=1, engine="fast").run(specs)
        threaded = SweepExecutor(jobs=4, engine="fast").run(specs)
        assert serialize(threaded) == serialize(serial)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(engine="warp")


class TestPrewarm:
    def test_no_redundant_build_program_calls(self, specs, monkeypatch):
        """Every (workload, size, geometry) coordinate builds its
        program exactly once per sweep; the mode x iteration fan-out
        reuses the memoized object."""
        calls = []
        original = RunSpec.build_program

        def counting(self):
            calls.append((self.workload, self.size))
            return original(self)

        monkeypatch.setattr(RunSpec, "build_program", counting)
        executor = SweepExecutor(jobs=1, engine="fast")
        executor.run(specs)
        distinct = {(s.workload, s.size, s.blocks, s.threads) for s in specs}
        assert len(calls) == len(distinct)
        # 2 workloads x 2 sizes x 5 modes x 3 iterations = 60 specs,
        # but only 4 distinct program coordinates.
        assert len(calls) == 4
        assert len(specs) == 60

    def test_prewarm_counts_distinct_coordinates(self, specs):
        executor = SweepExecutor(jobs=1)
        assert executor.prewarm(specs) == 4
        # Idempotent: a second pass builds nothing new.
        assert executor.prewarm(specs) == 4


class TestMemoStats:
    def test_fast_sweep_reports_phase_memo_hits(self, specs):
        executor = SweepExecutor(jobs=1, engine="fast")
        executor.run(specs)
        stats = executor.last
        assert stats.engine == "fast"
        assert stats.phase_lookups > 0
        # 3 iterations per cell with identical phases: most lookups hit.
        assert stats.phase_hits > stats.phase_misses
        summary = executor.summary()
        assert "fast engine" in summary
        assert "phase memo" in summary
        assert f"{stats.phase_hits}/{stats.phase_lookups}" in summary

    def test_reference_sweep_reports_no_memo(self, specs):
        executor = SweepExecutor(jobs=1, engine="reference")
        executor.run(specs[:10])
        assert executor.last.phase_lookups == 0
        assert "phase memo" not in executor.summary()
        assert "fast engine" not in executor.summary()

    def test_hit_rate_property(self):
        from repro.harness.executor import SweepStats
        stats = SweepStats(phase_hits=3, phase_misses=1)
        assert stats.phase_lookups == 4
        assert stats.phase_hit_rate == pytest.approx(0.75)
        assert SweepStats().phase_hit_rate == 0.0
