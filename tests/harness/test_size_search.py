"""Input-size search (Sec. 3.3) tests."""

import pytest

from repro.harness.size_search import (SizeAssessment, assess_sizes,
                                       recommend_sizes, render_size_search)
from repro.workloads.sizes import SizeClass


@pytest.fixture(scope="module")
def assessments():
    return assess_sizes("vector_seq", iterations=6)


class TestSearch:
    def test_covers_all_sizes(self, assessments):
        assert [a.size for a in assessments] == \
            [s.label for s in SizeClass.ordered()]

    def test_takeaway1_band(self, assessments):
        """The search must land on the paper's Large/Super band."""
        usable = recommend_sizes(assessments)
        assert "large" in usable
        assert "super" in usable
        assert "tiny" not in usable

    def test_mega_is_not_usable(self, assessments):
        mega = next(a for a in assessments if a.size == "mega")
        assert not a_usable(mega)

    def test_small_sizes_are_noisy(self, assessments):
        tiny = next(a for a in assessments if a.size == "tiny")
        super_ = next(a for a in assessments if a.size == "super")
        assert tiny.cv > super_.cv

    def test_spread_grows_with_size(self, assessments):
        tiny = next(a for a in assessments if a.size == "tiny")
        super_ = next(a for a in assessments if a.size == "super")
        assert super_.config_spread > tiny.config_spread

    def test_render(self, assessments):
        text = render_size_search("vector_seq", assessments)
        assert "recommended band" in text
        assert "large" in text


def a_usable(assessment: SizeAssessment) -> bool:
    return assessment.usable
