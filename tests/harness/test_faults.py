"""Fault-injection plan tests (:mod:`repro.harness.faults`)."""

import os

import pytest

from repro.harness import faults
from repro.harness.executor import RunSpec, execute_spec


def spec_for(iteration=0, workload="saxpy", size="tiny", mode="standard"):
    return RunSpec(workload=workload, size=size, mode=mode,
                   iteration=iteration)


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    faults.clear()
    yield
    faults.clear()


class TestFault:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.Fault(kind="explode", workload="saxpy", size="tiny",
                         mode="standard")

    def test_rejects_zero_based_attempts(self):
        with pytest.raises(ValueError, match="1-based"):
            faults.Fault(kind=faults.KIND_FAIL, workload="saxpy",
                         size="tiny", mode="standard", attempts=(0,))

    def test_matches_coordinates_and_attempt(self):
        fault = faults.Fault(kind=faults.KIND_FAIL, workload="saxpy",
                             size="tiny", mode="standard", iteration=2,
                             attempts=(1, 3))
        assert fault.matches(spec_for(iteration=2), 1)
        assert fault.matches(spec_for(iteration=2), 3)
        assert not fault.matches(spec_for(iteration=2), 2)
        assert not fault.matches(spec_for(iteration=1), 1)
        assert not fault.matches(spec_for(iteration=2, mode="uvm"), 1)

    def test_empty_attempts_means_permanent(self):
        fault = faults.Fault(kind=faults.KIND_FAIL, workload="saxpy",
                             size="tiny", mode="standard", attempts=())
        for attempt in (1, 2, 7):
            assert fault.matches(spec_for(), attempt)

    def test_for_spec_targets_the_given_cell(self):
        spec = spec_for(iteration=4, mode="uvm_prefetch")
        fault = faults.Fault.for_spec(spec, kind=faults.KIND_HANG,
                                      hang_s=1.5)
        assert fault.matches(spec, 1)
        assert fault.kind == faults.KIND_HANG
        assert fault.hang_s == 1.5


class TestFaultPlan:
    def test_match_returns_first_hit(self):
        plan = faults.FaultPlan(faults=(
            faults.Fault.for_spec(spec_for(0)),
            faults.Fault.for_spec(spec_for(1), kind=faults.KIND_HANG),
        ))
        assert plan.match(spec_for(0), 1).kind == faults.KIND_FAIL
        assert plan.match(spec_for(1), 1).kind == faults.KIND_HANG
        assert plan.match(spec_for(2), 1) is None

    def test_json_round_trip(self):
        plan = faults.FaultPlan(faults=(
            faults.Fault.for_spec(spec_for(3), attempts=(1, 2)),
            faults.Fault.for_spec(spec_for(5), kind=faults.KIND_CRASH,
                                  attempts=()),
        ))
        assert faults.FaultPlan.from_json(plan.to_json()) == plan


class TestActivation:
    def test_install_sets_env_for_workers(self):
        plan = faults.FaultPlan(faults=(faults.Fault.for_spec(spec_for()),))
        faults.install(plan)
        assert os.environ[faults.PLAN_ENV] == plan.to_json()
        faults.clear()
        assert faults.PLAN_ENV not in os.environ
        assert faults.active_plan() is None

    def test_active_plan_falls_back_to_env(self, monkeypatch):
        """Worker processes inherit the env but not the module global."""
        plan = faults.FaultPlan(faults=(faults.Fault.for_spec(spec_for()),))
        monkeypatch.setenv(faults.PLAN_ENV, plan.to_json())
        monkeypatch.setattr(faults, "_ACTIVE", None)
        assert faults.active_plan() == plan

    def test_malformed_env_plan_is_ignored(self, monkeypatch):
        monkeypatch.setenv(faults.PLAN_ENV, "{not json")
        monkeypatch.setattr(faults, "_ACTIVE", None)
        assert faults.active_plan() is None

    def test_inject_cleans_up_on_error(self):
        plan = faults.FaultPlan(faults=(faults.Fault.for_spec(spec_for()),))
        with pytest.raises(RuntimeError):
            with faults.inject(plan):
                assert faults.active_plan() == plan
                raise RuntimeError("boom")
        assert faults.active_plan() is None


class TestMaybeFire:
    def test_no_plan_is_a_no_op(self):
        faults.maybe_fire(spec_for(), attempt=1)  # must not raise

    def test_fail_raises_injected_fault_from_execute_spec(self):
        spec = spec_for()
        with faults.inject(faults.FaultPlan(
                faults=(faults.Fault.for_spec(spec),))):
            with pytest.raises(faults.InjectedFault, match="saxpy@tiny"):
                execute_spec(spec)
            # attempt 2 is clean: the schedule is per-attempt
            run = execute_spec(spec, attempt=2)
        assert run.workload == "saxpy"

    def test_corrupt_cache_never_fires_inline(self):
        spec = spec_for()
        plan = faults.FaultPlan(faults=(faults.Fault.for_spec(
            spec, kind=faults.KIND_CORRUPT_CACHE),))
        with faults.inject(plan):
            faults.maybe_fire(spec, attempt=1)  # must not raise
            assert faults.should_corrupt_cache(spec)
            assert not faults.should_corrupt_cache(spec_for(iteration=9))
