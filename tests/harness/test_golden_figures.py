"""Golden regression tests for figure outputs.

Small golden JSON files (checked in under ``tests/harness/golden/``)
pin the numbers of fig5 (stability), fig6 (Mega breakdown), and the
fig7-style geomean improvements on a reduced grid. Future performance
PRs (parallelism, caching, seeding refactors) cannot silently skew the
paper's numbers without these failing.

Regenerate after an *intentional* model change with::

    PYTHONPATH=src python tests/harness/test_golden_figures.py --regen

and include the diff in review.
"""

import json
from pathlib import Path

import pytest

from repro.core.configs import TransferMode
from repro.harness.figures import (comparison_sweep, fig4_distributions,
                                   fig5_stability, fig6_mega_breakdown,
                                   geomean_improvements)
from repro.workloads.sizes import SizeClass

GOLDEN_DIR = Path(__file__).parent / "golden"
RELTOL = 1e-9

# Reduced grids: seconds of simulation, stable under the fixed seeds.
FIG5_KWARGS = dict(iterations=4,
                   sizes=(SizeClass.TINY, SizeClass.LARGE),
                   workloads=("vector_seq", "saxpy"))
FIG6_KWARGS = dict(iterations=3)
GEOMEAN_WORKLOADS = ("vector_seq", "saxpy", "gemm")
GEOMEAN_KWARGS = dict(size=SizeClass.LARGE, iterations=3)


def build_fig5():
    return fig5_stability(fig4_distributions(**FIG5_KWARGS))


def build_fig6():
    return fig6_mega_breakdown(**FIG6_KWARGS)


def build_geomean():
    comparisons = comparison_sweep(GEOMEAN_WORKLOADS, **GEOMEAN_KWARGS)
    return {
        "improvements": geomean_improvements(comparisons),
        "normalized": {
            name: {mode.value: comparisons[name].normalized_total(mode)
                   for mode in TransferMode}
            for name in GEOMEAN_WORKLOADS
        },
    }


BUILDERS = {
    "fig5_stability.json": build_fig5,
    "fig6_mega_breakdown.json": build_fig6,
    "fig7_geomean.json": build_geomean,
}


def load_golden(name):
    path = GOLDEN_DIR / name
    if not path.exists():
        pytest.fail(f"golden file missing: {path} "
                    "(regenerate with --regen)")
    return json.loads(path.read_text())


def assert_close(actual, golden, context=""):
    """Recursive tolerance comparison with a useful failure path."""
    assert type(actual) is type(golden) or \
        (isinstance(actual, (int, float)) and
         isinstance(golden, (int, float))), \
        f"{context}: type changed {type(golden)} -> {type(actual)}"
    if isinstance(golden, dict):
        assert sorted(actual) == sorted(golden), \
            f"{context}: keys changed"
        for key in golden:
            assert_close(actual[key], golden[key], f"{context}/{key}")
    elif isinstance(golden, list):
        assert len(actual) == len(golden), f"{context}: length changed"
        for index, (a, g) in enumerate(zip(actual, golden)):
            assert_close(a, g, f"{context}[{index}]")
    elif isinstance(golden, float):
        assert actual == pytest.approx(golden, rel=RELTOL), \
            f"{context}: {actual!r} != golden {golden!r}"
    else:
        assert actual == golden, f"{context}: {actual!r} != {golden!r}"


class TestGoldenFigures:
    def test_fig5_stability_matches_golden(self):
        assert_close(build_fig5(), load_golden("fig5_stability.json"),
                     "fig5")

    def test_fig6_breakdown_matches_golden(self):
        assert_close(build_fig6(), load_golden("fig6_mega_breakdown.json"),
                     "fig6")

    def test_fig7_geomean_matches_golden(self):
        assert_close(build_geomean(), load_golden("fig7_geomean.json"),
                     "fig7-geomean")

    def test_goldens_contain_expected_shape(self):
        golden = load_golden("fig5_stability.json")
        assert "Geo-mean" in golden
        geomean = load_golden("fig7_geomean.json")
        assert set(geomean["improvements"]) == \
            {mode.value for mode in TransferMode}


def regenerate():  # pragma: no cover - maintenance entry point
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, builder in BUILDERS.items():
        path = GOLDEN_DIR / name
        path.write_text(json.dumps(builder(), indent=2, sort_keys=True)
                        + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    import sys
    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
