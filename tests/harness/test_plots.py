"""ASCII stacked-bar plot tests."""

import pytest

from repro.core.configs import TransferMode
from repro.core.experiment import Experiment
from repro.harness.plots import (render_stacked_comparison,
                                 render_stacked_suite, stacked_bar)
from repro.workloads.sizes import SizeClass


@pytest.fixture(scope="module")
def comparison():
    return Experiment(workload="saxpy", size=SizeClass.LARGE,
                      iterations=2).run()


class TestStackedBar:
    def test_glyph_lengths_proportional(self):
        bar = stacked_bar({"gpu_kernel": 0.2, "memcpy": 0.4,
                           "allocation": 0.4}, width=50)
        assert bar.count("K") == 10
        assert bar.count("M") == 20
        assert bar.count("A") == 20

    def test_overlong_bars_allowed(self):
        """uvm bars can exceed 1.0x standard."""
        bar = stacked_bar({"gpu_kernel": 0.8, "memcpy": 0.5,
                           "allocation": 0.2}, width=40)
        assert len(bar) > 40

    def test_width_validated(self):
        with pytest.raises(ValueError):
            stacked_bar({}, width=5)


class TestRenderComparison:
    def test_contains_all_modes_and_marker(self, comparison):
        text = render_stacked_comparison(comparison)
        for mode in TransferMode:
            assert mode.value in text
        assert "|" in text
        assert "K" in text and "M" in text and "A" in text

    def test_standard_bar_ends_at_marker(self, comparison):
        text = render_stacked_comparison(comparison, width=50)
        standard_line = next(line for line in text.splitlines()
                             if line.strip().startswith("standard "))
        glyphs = sum(standard_line.count(g) for g in "KMA")
        assert glyphs == pytest.approx(50, abs=2)

    def test_suite_render(self, comparison):
        text = render_stacked_suite({"saxpy": comparison})
        assert "saxpy @ large" in text
