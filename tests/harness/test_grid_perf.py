"""Perf acceptance: the vector engine must earn its complexity.

Gate: a cold Fig. 12 threads grid (the ``repro bench`` canonical grid:
vector_seq @ large, 64 blocks, six thread points, all five transfer
modes) under ``--engine vector`` completes >= 5x faster than
``--engine fast``.  The measurement reuses the ``repro bench``
protocol (:func:`repro.harness.regression.measure_engine`) so the
number the gate checks is the same number the perf trajectory tracks.
The run is written through :func:`save_bench` (schema-validated) into
a scratch dir and summarised to ``benchmarks/results/grid_speedup.txt``
— the *committed* ``BENCH_*.json`` trajectory only grows from
deliberate ``repro bench`` runs, never from test runs.  On the
development box the ratio is ~7x cold (see docs/PERFORMANCE.md and the
committed ``BENCH_0001_*.json``), so the 5x floor leaves headroom for
loaded CI machines.
"""

from pathlib import Path

import pytest

from repro.harness import regression

RESULTS = Path(__file__).resolve().parents[2] / "benchmarks" / "results"

#: Cold/warm sweeps per engine: min() of the cold series discards
#: scheduler noise, which only ever slows a run down.
REPEATS = 3


@pytest.mark.perf
def test_vector_engine_5x_on_fig12_grid(tmp_path):
    payload = regression.collect_bench(engines=("fast", "vector"),
                                       repeats=REPEATS)
    fast = min(payload["engines"]["fast"]["cold_s"])
    vector = min(payload["engines"]["vector"]["cold_s"])
    ratio = fast / vector

    # Full schema'd evidence in a scratch dir (exercises the exact
    # save path `repro bench` uses), stable summary next to the
    # committed trajectory.
    regression.save_bench(payload, results_dir=tmp_path)
    specs = payload["grid"]["specs"]
    per_spec_us = 1e6 / specs
    snapshot = "\n".join([
        "vector engine speedup gate (cold fig12 threads grid:",
        f"{payload['grid']['workload']} @ {payload['grid']['size']}, "
        f"all modes, {payload['grid']['iterations']} iterations;",
        f"best of {REPEATS}; jobs=1, no cache)",
        "",
        f"specs:         {specs}",
        f"fast engine:   {fast:.4f}s  ({fast * per_spec_us:.0f}us/spec)",
        f"vector engine: {vector:.4f}s  ({vector * per_spec_us:.0f}us/spec)",
        f"speedup:       {ratio:.2f}x  (gate: >= 5x)",
    ])
    RESULTS.mkdir(parents=True, exist_ok=True)
    (RESULTS / "grid_speedup.txt").write_text(snapshot + "\n")

    assert ratio >= 5.0, (
        f"vector engine only {ratio:.2f}x faster than fast on the cold "
        f"fig12 grid ({vector:.4f}s vs {fast:.4f}s over {specs} specs); "
        "gate is 5x")
