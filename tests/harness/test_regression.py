"""Calibration regression-snapshot tests."""

import json

import pytest

from repro.harness.regression import (RegressionReport,
                                      collect_headline_metrics,
                                      compare_to_snapshot, save_snapshot)


@pytest.fixture(scope="module")
def metrics():
    return collect_headline_metrics(iterations=2)


class TestCollect:
    def test_headline_keys_present(self, metrics):
        assert "micro.improvement.uvm_prefetch" in metrics
        assert "apps.improvement.uvm_prefetch_async" in metrics
        assert "anomaly.nw.uvm_prefetch" in metrics
        assert "counters.gemm.async_control_ratio" in metrics

    def test_counter_ratios_in_paper_band(self, metrics):
        assert metrics["counters.gemm.async_control_ratio"] == \
            pytest.approx(1.40, abs=0.05)
        assert metrics["counters.lud.async_store_miss_ratio"] == \
            pytest.approx(0.30, abs=0.05)


class TestRoundTrip:
    def test_snapshot_compare_passes_against_itself(self, tmp_path,
                                                    metrics):
        path = save_snapshot(tmp_path / "ref.json", metrics=metrics)
        report = compare_to_snapshot(path, metrics=metrics)
        assert report.passed
        assert report.compared == len(metrics)
        assert "within tolerance" in report.render()

    def test_detects_drift(self, tmp_path, metrics):
        path = save_snapshot(tmp_path / "ref.json", metrics=metrics)
        drifted = dict(metrics)
        drifted["micro.improvement.uvm_prefetch"] += 10.0
        drifted["counters.lud.async_store_miss_ratio"] *= 2.0
        report = compare_to_snapshot(path, metrics=drifted)
        assert not report.passed
        assert len(report.violations) == 2
        assert "FAILED" in report.render()

    def test_detects_missing_metric(self, tmp_path, metrics):
        path = save_snapshot(tmp_path / "ref.json", metrics=metrics)
        partial = dict(metrics)
        partial.pop("anomaly.lud.async")
        report = compare_to_snapshot(path, metrics=partial)
        assert not report.passed
        assert any("missing" in violation
                   for violation in report.violations)

    def test_version_mismatch_rejected(self, tmp_path, metrics):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "metrics": {}}))
        with pytest.raises(ValueError, match="version"):
            compare_to_snapshot(path, metrics=metrics)


class TestReport:
    def test_empty_report_passes(self):
        report = RegressionReport(passed=True, compared=5)
        assert "5 metrics" in report.render()


class TestCommittedSnapshot:
    """The repository ships a reference snapshot; the current tree must
    reproduce it (exact seeds -> tight tolerance)."""

    def test_tree_matches_committed_snapshot(self):
        from pathlib import Path
        path = Path(__file__).parents[2] / "benchmarks" / \
            "reference_snapshot.json"
        metrics = collect_headline_metrics(iterations=3)
        report = compare_to_snapshot(path, metrics=metrics,
                                     tolerance_pts=1.0,
                                     tolerance_rel=0.02)
        assert report.passed, report.render()
