"""Calibration regression-snapshot and perf-trajectory bench tests."""

import json

import pytest

# `bench_grid_specs` is aliased: pytest's python_functions collects
# bare `bench_*` names as tests.
from repro.harness.regression import \
    bench_grid_specs as the_bench_grid_specs
from repro.harness.regression import (BenchComparison, BenchReport,
                                      RegressionReport,
                                      bootstrap_mean_ci, collect_bench,
                                      collect_headline_metrics, compare_bench,
                                      compare_to_snapshot, latest_bench,
                                      load_bench, render_bench, save_bench,
                                      save_snapshot, validate_bench)


@pytest.fixture(scope="module")
def metrics():
    return collect_headline_metrics(iterations=2)


class TestCollect:
    def test_headline_keys_present(self, metrics):
        assert "micro.improvement.uvm_prefetch" in metrics
        assert "apps.improvement.uvm_prefetch_async" in metrics
        assert "anomaly.nw.uvm_prefetch" in metrics
        assert "counters.gemm.async_control_ratio" in metrics

    def test_counter_ratios_in_paper_band(self, metrics):
        assert metrics["counters.gemm.async_control_ratio"] == \
            pytest.approx(1.40, abs=0.05)
        assert metrics["counters.lud.async_store_miss_ratio"] == \
            pytest.approx(0.30, abs=0.05)


class TestRoundTrip:
    def test_snapshot_compare_passes_against_itself(self, tmp_path,
                                                    metrics):
        path = save_snapshot(tmp_path / "ref.json", metrics=metrics)
        report = compare_to_snapshot(path, metrics=metrics)
        assert report.passed
        assert report.compared == len(metrics)
        assert "within tolerance" in report.render()

    def test_detects_drift(self, tmp_path, metrics):
        path = save_snapshot(tmp_path / "ref.json", metrics=metrics)
        drifted = dict(metrics)
        drifted["micro.improvement.uvm_prefetch"] += 10.0
        drifted["counters.lud.async_store_miss_ratio"] *= 2.0
        report = compare_to_snapshot(path, metrics=drifted)
        assert not report.passed
        assert len(report.violations) == 2
        assert "FAILED" in report.render()

    def test_detects_missing_metric(self, tmp_path, metrics):
        path = save_snapshot(tmp_path / "ref.json", metrics=metrics)
        partial = dict(metrics)
        partial.pop("anomaly.lud.async")
        report = compare_to_snapshot(path, metrics=partial)
        assert not report.passed
        assert any("missing" in violation
                   for violation in report.violations)

    def test_version_mismatch_rejected(self, tmp_path, metrics):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "metrics": {}}))
        with pytest.raises(ValueError, match="version"):
            compare_to_snapshot(path, metrics=metrics)


class TestReport:
    def test_empty_report_passes(self):
        report = RegressionReport(passed=True, compared=5)
        assert "5 metrics" in report.render()


# ======================================================================
# Perf-trajectory benchmarking (``repro bench``)
# ======================================================================
def fake_bench(engines=("fast", "vector"), fingerprint="f" * 40,
               scale=1.0, grid_extra=None):
    """A synthetic, schema-valid snapshot with controllable timings."""
    grid = {"figure": "fig12-threads", "specs": 30, "iterations": 1}
    grid.update(grid_extra or {})
    series = [1.00 * scale, 1.02 * scale, 0.98 * scale, 1.01 * scale]
    return {
        "version": 1,
        "kind": "perf-trajectory",
        "created_utc": "2026-08-07T00:00:00Z",
        "grid": grid,
        "protocol": {"repeats": 4, "warmup_runs": 1},
        "environment": {"fingerprint": fingerprint},
        "engines": {engine: {"cold_s": list(series),
                             "warm_s": [s / 2 for s in series]}
                    for engine in engines},
    }


class TestBenchGrid:
    def test_grid_is_the_fig12_threads_sweep(self):
        specs = the_bench_grid_specs(iterations=1)
        # Six thread points x five transfer modes x one iteration.
        assert len(specs) == 30
        assert len({spec.threads for spec in specs}) == 6
        assert len({spec.mode for spec in specs}) == 5
        assert len(the_bench_grid_specs(iterations=3)) == 90


class TestCollectBench:
    @pytest.fixture(scope="class")
    def payload(self):
        return collect_bench(repeats=2, iterations=1)

    def test_schema_and_series_shape(self, payload):
        validate_bench(payload)  # must not raise
        assert set(payload["engines"]) == {"fast", "vector"}
        for samples in payload["engines"].values():
            assert len(samples["cold_s"]) == 2
            assert len(samples["warm_s"]) == 2
        assert payload["grid"]["specs"] == 30

    def test_derived_speedups_present(self, payload):
        assert payload["derived"]["vector_speedup_cold"] > 0
        assert payload["derived"]["vector_speedup_warm"] > 0

    def test_render_mentions_every_engine(self, payload):
        rendered = render_bench(payload)
        assert "fast" in rendered and "vector" in rendered
        assert "vector speedup vs fast" in rendered

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            collect_bench(repeats=0)


class TestBenchRoundTrip:
    def test_save_names_are_sequence_ordered(self, tmp_path):
        first = save_bench(fake_bench(), results_dir=tmp_path)
        second = save_bench(fake_bench(), results_dir=tmp_path)
        assert first.name.startswith("BENCH_0001_")
        assert second.name.startswith("BENCH_0002_")
        assert first.name.endswith(f"_{'f' * 8}.json")
        assert latest_bench(tmp_path) == second

    def test_load_roundtrip(self, tmp_path):
        payload = fake_bench()
        path = save_bench(payload, results_dir=tmp_path)
        assert load_bench(path) == payload

    def test_latest_ignores_foreign_files(self, tmp_path):
        assert latest_bench(tmp_path / "missing") is None
        (tmp_path / "BENCH_notanum_x.json").write_text("{}")
        assert latest_bench(tmp_path) is None
        path = save_bench(fake_bench(), results_dir=tmp_path)
        assert latest_bench(tmp_path) == path

    @pytest.mark.parametrize("mutate,match", [
        (lambda p: p.update(version=99), "version"),
        (lambda p: p.update(kind="calibration"), "kind"),
        (lambda p: p.pop("grid"), "grid"),
        (lambda p: p.update(engines={}), "no engine samples"),
        (lambda p: p["engines"]["fast"].update(cold_s=[]), "cold_s"),
        (lambda p: p["engines"]["fast"].update(warm_s=[0.1, -1.0]),
         "warm_s"),
    ])
    def test_validate_rejects_malformed(self, mutate, match):
        payload = fake_bench()
        mutate(payload)
        with pytest.raises(ValueError, match=match):
            validate_bench(payload)


class TestBootstrap:
    def test_deterministic_and_ordered(self):
        samples = [1.0, 1.2, 0.9, 1.1, 1.05]
        lower, upper = bootstrap_mean_ci(samples)
        assert (lower, upper) == bootstrap_mean_ci(samples)
        assert lower <= sum(samples) / len(samples) <= upper

    def test_single_sample_degenerates_to_point(self):
        assert bootstrap_mean_ci([2.5]) == (2.5, 2.5)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            bootstrap_mean_ci([])


class TestBenchComparisonLogic:
    @staticmethod
    def leg(baseline_ci, current_ci, baseline_mean=None,
            current_mean=None):
        return BenchComparison(
            engine="vector", phase="cold",
            baseline_mean=baseline_mean
            if baseline_mean is not None else sum(baseline_ci) / 2,
            current_mean=current_mean
            if current_mean is not None else sum(current_ci) / 2,
            baseline_ci=baseline_ci, current_ci=current_ci)

    def test_overlapping_cis_are_quiet(self):
        leg = self.leg((1.0, 2.0), (1.5, 2.5))
        assert leg.overlap and not leg.regressed and not leg.improved
        assert "ok" in leg.render()

    def test_disjoint_and_slower_regresses(self):
        leg = self.leg((1.0, 1.1), (2.0, 2.1))
        assert leg.regressed and not leg.improved
        assert "REGRESSED" in leg.render()

    def test_disjoint_and_faster_improves(self):
        leg = self.leg((2.0, 2.1), (1.0, 1.1))
        assert leg.improved and not leg.regressed
        assert "improved" in leg.render()


class TestCompareBench:
    def test_snapshot_vs_itself_passes(self):
        payload = fake_bench()
        report = compare_bench(payload, payload)
        assert report.passed
        assert len(report.comparisons) == 4  # 2 engines x cold/warm
        assert not report.notes
        assert "within statistical noise" in report.render()

    def test_slowdown_regresses(self):
        report = compare_bench(fake_bench(scale=10.0), fake_bench())
        assert not report.passed
        regressed = [c for c in report.comparisons if c.regressed]
        assert len(regressed) == 4
        assert "REGRESSED" in report.render()

    def test_speedup_is_not_a_regression(self):
        report = compare_bench(fake_bench(), fake_bench(scale=10.0))
        assert report.passed
        assert all(c.improved for c in report.comparisons)

    def test_missing_engine_is_a_note_not_a_failure(self):
        report = compare_bench(fake_bench(),
                               fake_bench(engines=("fast",)))
        assert report.passed
        assert any("vector" in note for note in report.notes)
        assert len(report.comparisons) == 2

    def test_environment_and_grid_mismatch_are_advisory(self):
        baseline = fake_bench()
        current = fake_bench(fingerprint="0" * 40,
                             grid_extra={"iterations": 2})
        report = compare_bench(current, baseline)
        assert report.passed
        assert any("fingerprint" in note for note in report.notes)
        assert any("grids differ" in note for note in report.notes)

    def test_empty_report_renders(self):
        assert "nothing comparable" in BenchReport().render()


class TestCommittedSnapshot:
    """The repository ships a reference snapshot; the current tree must
    reproduce it (exact seeds -> tight tolerance)."""

    def test_tree_matches_committed_snapshot(self):
        from pathlib import Path
        path = Path(__file__).parents[2] / "benchmarks" / \
            "reference_snapshot.json"
        metrics = collect_headline_metrics(iterations=3)
        report = compare_to_snapshot(path, metrics=metrics,
                                     tolerance_pts=1.0,
                                     tolerance_rel=0.02)
        assert report.passed, report.render()
