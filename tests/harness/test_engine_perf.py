"""Perf acceptance: the fast engine must earn its complexity.

Gate: a cold fig6-style sweep (vector_seq at Mega, 30 iterations —
the chunk-train-heaviest cell in the paper grid) under
``--engine fast`` completes >= 3x faster than ``--engine reference``.
The measured ratio is snapshotted to
``benchmarks/results/engine_speedup.txt`` so EXPERIMENTS.md can quote
it; on the development box the ratio is ~28x (see
docs/PERFORMANCE.md), so the 3x floor leaves plenty of headroom for
loaded CI machines.
"""

import time
from pathlib import Path

import pytest

from repro.core.configs import TransferMode
from repro.harness.executor import (SweepExecutor, clear_program_memo,
                                    expand_grid)
from repro.sim.phasecache import clear_phase_memos
from repro.workloads.sizes import SizeClass

RESULTS = Path(__file__).resolve().parents[2] / "benchmarks" / "results"

GRID = dict(workloads=("vector_seq",), sizes=(SizeClass.MEGA,),
            modes=(TransferMode.STANDARD,), iterations=30)


def cold_sweep_seconds(engine: str, specs, repeats: int = 3) -> float:
    """Best-of-N cold sweep wall time (no result cache, cold memos)."""
    best = float("inf")
    for _ in range(repeats):
        clear_phase_memos()
        clear_program_memo()
        executor = SweepExecutor(jobs=1, cache=None, engine=engine)
        started = time.perf_counter()
        executor.run(specs)
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.perf
def test_fast_engine_3x_on_fig6_grid():
    specs = expand_grid(**GRID)
    reference_s = cold_sweep_seconds("reference", specs)
    fast_s = cold_sweep_seconds("fast", specs)
    ratio = reference_s / fast_s

    per_spec_us = 1e6 / len(specs)
    snapshot = "\n".join([
        "engine speedup gate (cold fig6-style sweep: vector_seq @ mega,",
        "standard mode, 30 iterations; best of 3; jobs=1, no cache)",
        "",
        f"specs:            {len(specs)}",
        f"reference engine: {reference_s:.4f}s"
        f"  ({reference_s * per_spec_us:.0f}us/spec)",
        f"fast engine:      {fast_s:.4f}s"
        f"  ({fast_s * per_spec_us:.0f}us/spec)",
        f"speedup:          {ratio:.2f}x  (gate: >= 3x)",
    ])
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "engine_speedup.txt").write_text(snapshot + "\n")

    assert ratio >= 3.0, (
        f"fast engine only {ratio:.2f}x faster than reference "
        f"({fast_s:.4f}s vs {reference_s:.4f}s); gate is 3x")
