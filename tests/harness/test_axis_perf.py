"""Perf acceptance: axis fusion must earn its classifier.

Gate: on a cold Fig. 12 threads grid at the paper's 30-iteration
distribution depth, the vector engine with axis fusion
(``SweepExecutor(engine="vector")``) completes >= 3x faster than the
same engine with fusion disabled (``fuse=False`` — exactly PR 7's
per-cell replay: one compiled program per coordinate group, one scalar
replay per spec).  Both legs run the identical ``repro bench`` cold
protocol (:func:`repro.harness.regression.measure_engine`), and the
differential battery pins them bit-identical, so the ratio isolates
the fused family replay itself.

The gate measures at ``iterations=30`` rather than the bench default
of 10: fusion changes the *marginal* per-spec cost (~5us fused vs
~28us per-cell on the development box), while fixed costs (phase
prewarm, per-family compiles) are shared by both legs and dominate
shorter grids.  At 900 specs the dev-box ratio is ~3.1-3.8x cold; the
3x floor leaves the fixed-cost overhead visible but gates the
marginal win.

The run writes a stable summary to
``benchmarks/results/axis_speedup.txt`` next to the committed
trajectory; the ``BENCH_*.json`` trajectory itself only grows from
deliberate ``repro bench`` runs.
"""

from pathlib import Path

import pytest

from repro.harness import regression

RESULTS = Path(__file__).resolve().parents[2] / "benchmarks" / "results"

#: Cold sweeps per leg: min() of the series discards scheduler noise,
#: which only ever slows a run down.
REPEATS = 5


@pytest.mark.perf
def test_axis_fusion_3x_over_per_cell_vector_on_fig12_grid():
    axis = regression.measure_axis_speedup(
        iterations=regression.AXIS_GATE_ITERATIONS, repeats=REPEATS)

    # Every family on the fig12 grid must actually take the fused
    # path — a silent classifier regression that rerouted the whole
    # grid per-cell would otherwise fail only on timing noise.
    assert axis.fusion["families_fused"] > 0
    assert axis.fusion["families_rerouted"] == 0, axis.fusion

    RESULTS.mkdir(parents=True, exist_ok=True)
    (RESULTS / "axis_speedup.txt").write_text(axis.render() + "\n")

    assert axis.speedup >= regression.AXIS_GATE_FLOOR, (
        f"axis fusion only {axis.speedup:.2f}x faster than per-cell "
        f"vector replay on the cold fig12 grid ({axis.best_fused_s:.4f}s "
        f"vs {axis.best_unfused_s:.4f}s over {axis.specs} specs); "
        f"gate is {regression.AXIS_GATE_FLOOR:.0f}x")
