"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


class TestStaticCommands:
    def test_list(self, capsys):
        out = run_cli(capsys, "list")
        assert "vector_seq" in out
        assert "yolov3" in out

    def test_sizes(self, capsys):
        out = run_cli(capsys, "sizes")
        assert "Mega" in out

    def test_hardware(self, capsys):
        out = run_cli(capsys, "hardware")
        assert "A100" in out


class TestRunCommands:
    def test_run(self, capsys):
        out = run_cli(capsys, "run", "saxpy", "--size", "small",
                      "--iterations", "2", "--mode", "uvm")
        assert "gpu_kernel" in out
        assert "std/mean" in out

    def test_compare(self, capsys):
        out = run_cli(capsys, "compare", "saxpy", "--size", "small",
                      "--iterations", "2")
        assert "uvm_prefetch_async" in out
        assert "vs standard" in out

    def test_advise(self, capsys):
        out = run_cli(capsys, "advise", "nw")
        assert "recommended configuration" in out

    def test_interjob(self, capsys):
        out = run_cli(capsys, "interjob", "saxpy", "--size", "large",
                      "--jobs", "3", "--iterations", "2")
        assert "improvement" in out


class TestFigures:
    @pytest.mark.parametrize("figure", ["6", "9", "10", "13"])
    def test_figure_commands(self, capsys, figure):
        out = run_cli(capsys, "figure", figure, "--iterations", "2")
        assert out.strip()

    def test_unknown_figure_exits(self):
        with pytest.raises(SystemExit):
            main(["figure", "99", "--iterations", "2"])

    def test_figure_7a(self, capsys):
        out = run_cli(capsys, "figure", "7a", "--iterations", "2")
        assert "large" in out


class TestSweep:
    def test_sweep_renders_comparison_and_summary(self, capsys, tmp_path):
        out = run_cli(capsys, "sweep", "saxpy", "vector_seq",
                      "--sizes", "tiny", "--iterations", "2",
                      "--cache-dir", str(tmp_path / "cache"))
        assert "sweep @ tiny" in out
        assert "geo-mean" in out
        assert "[sweep] 20 runs" in out
        assert "cache:" in out

    def test_sweep_warm_cache_reports_hits(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_cli(capsys, "sweep", "saxpy", "--sizes", "tiny",
                "--iterations", "2", "--cache-dir", cache_dir)
        out = run_cli(capsys, "sweep", "saxpy", "--sizes", "tiny",
                      "--iterations", "2", "--cache-dir", cache_dir)
        assert "10 cache hits" in out
        assert "0 executed" in out

    def test_sweep_no_cache_and_jobs(self, capsys):
        out = run_cli(capsys, "sweep", "saxpy", "--sizes", "tiny",
                      "--iterations", "2", "--no-cache", "--jobs", "2")
        assert "10 executed" in out
        assert "cache:" not in out

    def test_sweep_matches_compare_numbers(self, capsys):
        """The executor path reproduces the classic serial numbers."""
        sweep_out = run_cli(capsys, "sweep", "saxpy", "--sizes", "small",
                            "--iterations", "3", "--no-cache",
                            "--jobs", "4")
        compare_out = run_cli(capsys, "compare", "saxpy", "--size",
                              "small", "--iterations", "3")
        sweep_row = next(line for line in sweep_out.splitlines()
                         if line.startswith("saxpy"))
        normalized = sweep_row.split()[1:]
        for mode_label, value in zip(
                ("standard", "async", "uvm", "uvm_prefetch",
                 "uvm_prefetch_async"), normalized):
            compare_row = next(line for line in compare_out.splitlines()
                               if line.startswith(mode_label))
            assert value in compare_row

    def test_sweep_rejects_unknown_workload(self):
        with pytest.raises(SystemExit, match="quake3"):
            main(["sweep", "quake3", "--sizes", "tiny"])

    def test_figure_accepts_executor_flags(self, capsys, tmp_path):
        out = run_cli(capsys, "figure", "13", "--iterations", "2",
                      "--jobs", "2", "--cache-dir",
                      str(tmp_path / "cache"))
        assert "Fig. 13" in out
        assert "[sweep]" in out

    def test_sweep_fast_engine_matches_reference(self, capsys):
        """--engine fast renders the exact same table (bit-identical
        simulation) and reports its memo accounting in the summary."""
        ref = run_cli(capsys, "sweep", "saxpy", "--sizes", "tiny",
                      "--iterations", "2", "--no-cache")
        fast = run_cli(capsys, "sweep", "saxpy", "--sizes", "tiny",
                       "--iterations", "2", "--no-cache",
                       "--engine", "fast")
        ref_table = [line for line in ref.splitlines()
                     if not line.startswith("[sweep]")]
        fast_table = [line for line in fast.splitlines()
                      if not line.startswith("[sweep]")]
        assert fast_table == ref_table
        assert "fast engine" in fast
        assert "phase memo" in fast

    def test_sweep_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(["sweep", "saxpy", "--sizes", "tiny",
                  "--engine", "warp"])

    def test_sweep_vector_engine_matches_reference(self, capsys):
        """--engine vector renders the exact same table and reports
        its grid-batching accounting in the summary."""
        ref = run_cli(capsys, "sweep", "saxpy", "--sizes", "tiny",
                      "--iterations", "2", "--no-cache")
        vec = run_cli(capsys, "sweep", "saxpy", "--sizes", "tiny",
                      "--iterations", "2", "--no-cache",
                      "--engine", "vector")
        ref_table = [line for line in ref.splitlines()
                     if not line.startswith("[sweep]")]
        vec_table = [line for line in vec.splitlines()
                     if not line.startswith("[sweep]")]
        assert vec_table == ref_table
        assert "vector engine" in vec
        assert "grid-replayed" in vec


class TestBench:
    """`repro bench`: perf-trajectory snapshots + the statistical gate."""

    ARGS = ("bench", "--repeats", "1", "--iterations", "1")

    def test_bench_measures_and_saves(self, capsys, tmp_path):
        out = run_cli(capsys, *self.ARGS,
                      "--results-dir", str(tmp_path))
        assert "bench grid: fig12-threads" in out
        assert "vector speedup vs fast" in out
        assert "snapshot written" in out
        snapshots = list(tmp_path.glob("BENCH_*.json"))
        assert len(snapshots) == 1
        assert snapshots[0].name.startswith("BENCH_0001_")

    def test_check_without_baseline_is_informative(self, capsys,
                                                   tmp_path):
        out = run_cli(capsys, *self.ARGS, "--check", "--no-save",
                      "--results-dir", str(tmp_path))
        assert "no baseline snapshot" in out
        assert not list(tmp_path.glob("BENCH_*.json"))

    def test_check_against_slow_baseline_improves(self, capsys,
                                                  tmp_path):
        from repro.harness.regression import load_bench, save_bench
        path = run_cli(capsys, *self.ARGS,
                       "--results-dir", str(tmp_path))
        baseline = load_bench(next(tmp_path.glob("BENCH_*.json")))
        for samples in baseline["engines"].values():
            for phase in ("cold_s", "warm_s"):
                samples[phase] = [s * 1000 for s in samples[phase]]
        save_bench(baseline, results_dir=tmp_path)
        out = run_cli(capsys, *self.ARGS, "--check", "--no-save",
                      "--results-dir", str(tmp_path))
        assert "baseline:" in out
        assert "REGRESSED" not in out
        assert "improved" in out

    def test_check_regression_exits_nonzero(self, capsys, tmp_path):
        from repro.harness.regression import load_bench, save_bench
        run_cli(capsys, *self.ARGS, "--results-dir", str(tmp_path))
        baseline = load_bench(next(tmp_path.glob("BENCH_*.json")))
        for samples in baseline["engines"].values():
            for phase in ("cold_s", "warm_s"):
                samples[phase] = [s / 1000 for s in samples[phase]]
        save_bench(baseline, results_dir=tmp_path)
        code = main(["bench", "--repeats", "1", "--iterations", "1",
                     "--check", "--no-save",
                     "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSED" in out

    def test_engine_subset_and_validation(self, capsys, tmp_path):
        out = run_cli(capsys, "bench", "--repeats", "1",
                      "--iterations", "1", "--engines", "vector",
                      "--no-save", "--results-dir", str(tmp_path))
        assert "vector" in out
        assert "fast" not in out.replace("fig12-threads", "")
        with pytest.raises(SystemExit):
            main(["bench", "--repeats", "0"])
        with pytest.raises(SystemExit):
            main(["bench", "--engines", "warp"])


class TestArtifact:
    def test_run_micro_shared(self, capsys):
        out = run_cli(capsys, "artifact", "run_micro_shared", "-i", "2")
        assert "figure13" in out

    def test_process_perf(self, capsys):
        out = run_cli(capsys, "artifact", "process_perf")
        assert "figure9" in out and "figure10" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "quake3"])


class TestRoofline:
    def test_roofline_subset(self, capsys):
        out = run_cli(capsys, "roofline", "lud", "gemm", "--size", "super")
        assert "staging" in out
        assert "compute" in out


class TestLint:
    """Exit-code contract: clean registry -> 0; injected structural
    error -> non-zero with machine-readable diagnostics."""

    def test_clean_registry_exits_zero(self, capsys):
        out = run_cli(capsys, "lint", "--min-severity", "warning")
        assert "0 error(s)" in out

    def test_json_format(self, capsys):
        import json
        out = run_cli(capsys, "lint", "vector_seq", "gemm",
                      "--format", "json")
        payload = json.loads(out)
        assert payload["version"] == 1
        assert payload["contexts"] == 10  # 2 workloads x 5 modes
        assert payload["counts"]["error"] == 0

    def test_mode_subset(self, capsys):
        import json
        out = run_cli(capsys, "lint", "saxpy", "--mode", "uvm",
                      "--mode", "async", "--format", "json")
        assert json.loads(out)["contexts"] == 2

    def test_injected_error_exits_nonzero(self, capsys, monkeypatch):
        import json

        from repro.workloads.registry import get_workload

        real = get_workload("vector_seq")

        class BadWorkload:
            name = "vector_seq"

            @staticmethod
            def supports(size):
                return True

            @staticmethod
            def program(size):
                import dataclasses
                program = real.program(size)
                desc = dataclasses.replace(
                    program.phases[0].descriptor,
                    smem_static_bytes=200 * 1024)  # > 164 KiB device max
                phases = (dataclasses.replace(program.phases[0],
                                              descriptor=desc),)
                return dataclasses.replace(program, phases=phases)

        monkeypatch.setattr("repro.workloads.registry.get_workload",
                            lambda name: BadWorkload())
        code = main(["lint", "vector_seq", "--format", "json"])
        out = capsys.readouterr().out
        assert code == 1
        payload = json.loads(out)
        assert payload["counts"]["error"] > 0
        assert {d["rule"] for d in payload["diagnostics"]
                if d["severity"] == "error"} == {"K101"}

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            main(["lint", "quake3"])


class TestResilienceFlags:
    """Exit-code contract of the resilient sweep path: 0 complete,
    3 partial (gaps annotated), 1 strict abort, 130 interrupted."""

    FIG6 = ("figure", "6", "--iterations", "4", "--no-cache")

    @staticmethod
    def fig6_fault(iteration, attempts=()):
        from repro.harness import faults
        return faults.FaultPlan(faults=(faults.Fault(
            kind=faults.KIND_FAIL, workload="vector_seq", size="mega",
            mode="standard", iteration=iteration, attempts=attempts),))

    def test_partial_figure_exits_3_with_annotated_gaps(self, capsys):
        from repro.harness import faults
        with faults.inject(self.fig6_fault(1)):
            code = main(list(self.FIG6))
        out = capsys.readouterr().out
        assert code == 3
        assert "[sweep] partial: 1 of 4" in out
        assert "vector_seq@mega standard#1: failed" in out
        assert "\n1    -" in out  # the failed run renders as a gap row

    def test_retries_recover_a_transient_fault(self, capsys):
        from repro.harness import faults
        with faults.inject(self.fig6_fault(1, attempts=(1,))):
            code = main([*self.FIG6, "--retries", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 retries" in out
        assert "partial" not in out

    def test_strict_aborts_with_exit_1(self, capsys):
        from repro.harness import faults
        with faults.inject(self.fig6_fault(1)):
            code = main([*self.FIG6, "--strict"])
        err = capsys.readouterr().err
        assert code == 1
        assert "error: vector_seq@mega standard#1: failed" in err

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        import repro.harness.executor as executor_module

        def interrupt(entry):
            raise KeyboardInterrupt

        monkeypatch.setattr(executor_module, "_execute_entry", interrupt)
        code = main(list(self.FIG6))
        err = capsys.readouterr().err
        assert code == 130
        assert "--resume" in err  # points at the recovery path

    def test_resume_skips_journaled_failure(self, capsys, tmp_path):
        from repro.harness import faults
        cache_dir = str(tmp_path / "cache")
        with faults.inject(self.fig6_fault(1)):
            code = main(["figure", "6", "--iterations", "4",
                         "--cache-dir", cache_dir])
        assert code == 3
        capsys.readouterr()
        # fault cleared; --resume must skip the journaled failure and
        # replay the three completed cells from the cache
        code = main(["figure", "6", "--iterations", "4",
                     "--cache-dir", cache_dir, "--resume"])
        out = capsys.readouterr().out
        assert code == 3
        assert "3 cache hits" in out
        assert "0 executed" in out
        assert "skipped on resume (journaled failed)" in out

    def test_rerun_without_resume_retries_the_failure(self, capsys,
                                                      tmp_path):
        from repro.harness import faults
        cache_dir = str(tmp_path / "cache")
        with faults.inject(self.fig6_fault(1)):
            main(["figure", "6", "--iterations", "4",
                  "--cache-dir", cache_dir])
        capsys.readouterr()
        code = main(["figure", "6", "--iterations", "4",
                     "--cache-dir", cache_dir])  # no --resume, no fault
        out = capsys.readouterr().out
        assert code == 0
        assert "1 executed" in out  # only the failed cell reruns

    def test_rejects_zero_jobs(self):
        with pytest.raises(SystemExit, match="positive integer"):
            main([*self.FIG6, "--jobs", "0"])

    def test_rejects_bad_repro_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "three")
        with pytest.raises(SystemExit, match="REPRO_JOBS"):
            main(list(self.FIG6))

    def test_rejects_negative_retries(self):
        with pytest.raises(SystemExit, match="--retries"):
            main([*self.FIG6, "--retries", "-1"])

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(SystemExit, match="--timeout"):
            main([*self.FIG6, "--timeout", "0"])

    def test_resume_requires_the_cache(self):
        with pytest.raises(SystemExit, match="--resume needs"):
            main([*self.FIG6, "--resume"])
