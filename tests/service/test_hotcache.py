"""Unit battery for the in-memory hot LRU result cache."""

import threading

import pytest

from repro.service import HotCache


class TestBasics:
    def test_miss_then_store_then_hit(self):
        cache = HotCache(capacity=4)
        assert cache.get("k1") is None
        cache.put("k1", "run-1")
        assert cache.get("k1") == "run-1"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_len_and_contains(self):
        cache = HotCache(capacity=4)
        cache.put("k1", "run-1")
        assert len(cache) == 1
        assert "k1" in cache
        assert "k2" not in cache
        cache.clear()
        assert len(cache) == 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            HotCache(capacity=-1)


class TestLRU:
    def test_evicts_least_recently_used(self):
        cache = HotCache(capacity=2)
        cache.put("k1", "run-1")
        cache.put("k2", "run-2")
        assert cache.get("k1") == "run-1"  # freshen k1
        cache.put("k3", "run-3")  # evicts k2, the stale one
        assert "k2" not in cache
        assert cache.get("k1") == "run-1"
        assert cache.get("k3") == "run-3"
        assert cache.stats.evictions == 1

    def test_overwrite_freshens_without_eviction(self):
        cache = HotCache(capacity=2)
        cache.put("k1", "run-1")
        cache.put("k2", "run-2")
        cache.put("k1", "run-1b")  # overwrite, not a new entry
        assert len(cache) == 2
        assert cache.stats.evictions == 0
        cache.put("k3", "run-3")  # now k2 is the LRU victim
        assert "k2" not in cache
        assert cache.get("k1") == "run-1b"

    def test_capacity_zero_disables_the_layer(self):
        cache = HotCache(capacity=0)
        cache.put("k1", "run-1")
        assert cache.get("k1") is None
        assert len(cache) == 0
        assert cache.stats.stores == 0


class TestThreadSafety:
    def test_concurrent_mixed_traffic_stays_consistent(self):
        cache = HotCache(capacity=32)

        def hammer(worker):
            for i in range(200):
                key = f"k{(worker * 7 + i) % 48}"
                cache.put(key, i)
                cache.get(key)

        threads = [threading.Thread(target=hammer, args=(n,))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 32
        assert cache.stats.lookups == 800
