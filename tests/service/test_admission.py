"""Unit battery for the admission controller (load shedding, 429s)."""

import pytest

from repro.service import (AdmissionController, AdmissionLimits,
                           AdmissionRejected)


class TestLimitsValidation:
    def test_defaults_are_sane(self):
        limits = AdmissionLimits()
        assert limits.max_pending_specs == 512
        assert limits.max_requests == 64
        assert limits.max_tenant_pending is None

    @pytest.mark.parametrize("kwargs", [
        {"max_pending_specs": 0},
        {"max_requests": 0},
        {"max_tenant_pending": 0},
        {"retry_after_s": -1.0},
    ])
    def test_rejects_nonsense(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionLimits(**kwargs)


class TestAccounting:
    def test_admit_then_settle_then_release(self):
        control = AdmissionController()
        control.admit("alice", 4)
        assert control.pending_specs == 4
        assert control.inflight_requests == 1
        assert control.tenant_pending == {"alice": 4}
        for _ in range(4):
            control.spec_settled("alice")
        assert control.pending_specs == 0
        assert control.tenant_pending == {}
        control.release("alice")
        assert control.inflight_requests == 0
        assert control.stats.admitted == 1

    def test_release_returns_unsettled_slots_in_one_step(self):
        control = AdmissionController()
        control.admit("alice", 5)
        control.spec_settled("alice", 2)
        control.release("alice", unsettled=3)  # deadline expiry path
        assert control.pending_specs == 0
        assert control.tenant_pending == {}
        assert control.inflight_requests == 0

    def test_tenants_accumulate_independently(self):
        control = AdmissionController()
        control.admit("alice", 3)
        control.admit("bob", 2)
        assert control.pending_specs == 5
        assert control.tenant_pending == {"alice": 3, "bob": 2}
        control.spec_settled("bob", 2)
        assert control.tenant_pending == {"alice": 3}


class TestShedding:
    def test_sheds_when_queue_is_full(self):
        control = AdmissionController(
            AdmissionLimits(max_pending_specs=4, retry_after_s=2.5))
        control.admit("alice", 3)
        with pytest.raises(AdmissionRejected) as excinfo:
            control.admit("bob", 2)
        assert "queue depth" in excinfo.value.reason
        assert excinfo.value.retry_after_s == 2.5
        assert control.stats.shed_queue_full == 1
        assert control.pending_specs == 3  # rejection changed nothing
        control.admit("bob", 1)  # still room for a smaller ask

    def test_sheds_when_too_many_requests(self):
        control = AdmissionController(AdmissionLimits(max_requests=1))
        control.admit("alice", 1)
        with pytest.raises(AdmissionRejected) as excinfo:
            control.admit("bob", 1)
        assert "concurrent requests" in excinfo.value.reason
        assert control.stats.shed_requests_full == 1
        control.release("alice", unsettled=1)
        control.admit("bob", 1)  # slot freed by the release

    def test_sheds_per_tenant_hogs(self):
        control = AdmissionController(
            AdmissionLimits(max_tenant_pending=4))
        control.admit("bulk", 4)
        with pytest.raises(AdmissionRejected) as excinfo:
            control.admit("bulk", 1)
        assert "per-tenant" in excinfo.value.reason
        assert control.stats.shed_tenant_full == 1
        control.admit("light", 2)  # other tenants are unaffected

    def test_snapshot_shape(self):
        control = AdmissionController(AdmissionLimits(max_requests=1))
        control.admit("alice", 2)
        with pytest.raises(AdmissionRejected):
            control.admit("bob", 1)
        snapshot = control.snapshot()
        assert snapshot["pending_specs"] == 2
        assert snapshot["inflight_requests"] == 1
        assert snapshot["tenants"] == {"alice": 2}
        assert snapshot["admitted"] == 1
        assert snapshot["rejected"] == 1
        assert snapshot["shed"]["requests_full"] == 1
        assert snapshot["limits"]["max_requests"] == 1
