"""Chaos acceptance: a real ``repro serve`` process under fire.

The full operator story, end to end: launch the server as a
subprocess with a fault plan injected through the environment (worker
crashes, a hang that must be timed out and retried, flaky cache
reads), drive it over HTTP, SIGTERM it mid-grid, then restart with
``--resume`` and prove the stitched-together results are byte-for-byte
identical to an uninterrupted serial sweep. This is the service-level
analogue of the executor's chaos battery.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.harness import faults
from repro.harness.executor import RunSpec

from .harness import GRID, grid_specs, serial_records

pytestmark = pytest.mark.chaos

REPO = Path(__file__).resolve().parents[2]

#: Phase-2 payload: explicit specs on iterations the grid phase never
#: touches, so their delay faults cannot slow phase 1 down.
SLOW_SPECS = [{"workload": "vector_seq", "size": "tiny",
               "mode": "standard", "iteration": i}
              for i in range(5, 15)]


def chaos_plan():
    crash = RunSpec(workload="saxpy", size="tiny", mode="standard",
                    iteration=0)
    hang = RunSpec(workload="vector_seq", size="tiny", mode="uvm",
                   iteration=1)
    flaky = RunSpec(workload="saxpy", size="tiny", mode="uvm",
                    iteration=0)
    battery = [
        faults.Fault.for_spec(crash, kind=faults.KIND_CRASH,
                              attempts=()),
        faults.Fault.for_spec(hang, kind=faults.KIND_HANG,
                              attempts=(1,), hang_s=30.0),
        faults.Fault.for_spec(flaky, kind=faults.KIND_FLAKY_IO,
                              attempts=(1,)),
    ]
    for entry in SLOW_SPECS:
        battery.append(faults.Fault.for_spec(
            RunSpec(**entry), kind=faults.KIND_DELAY, attempts=(),
            delay_s=1.0))
    return faults.FaultPlan(faults=tuple(battery))


def launch(cache_dir, *, resume=False, fault_plan=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT_PLAN", None)
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = fault_plan.to_json()
    argv = [sys.executable, "-m", "repro", "serve", "--port", "0",
            "--cache-dir", str(cache_dir), "--backend", "process",
            "--jobs", "1", "--slots", "1", "--batch-size", "4",
            "--retries", "1", "--timeout", "2", "--deadline", "120",
            "--drain-grace", "60"]
    if resume:
        argv.append("--resume")
    proc = subprocess.Popen(argv, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True,
                            bufsize=1)
    port = None
    for line in proc.stdout:
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.wait(timeout=10)
        raise AssertionError("server never announced a port")
    return proc, port


def request(port, method, path, body=None, timeout=120.0):
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def wait_scheduler_idle(port, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, stats = request(port, "GET", "/stats", timeout=10.0)
        scheduler = stats["scheduler"]
        if scheduler["queued_jobs"] == 0 \
                and scheduler["running_batches"] == 0 \
                and scheduler["inflight_keys"] == 0:
            return stats
        time.sleep(0.2)
    raise AssertionError("scheduler never went idle after resume")


def drain_and_reap(proc, collected_output=None):
    proc.send_signal(signal.SIGTERM)
    output = proc.stdout.read()
    returncode = proc.wait(timeout=90)
    if collected_output is not None:
        collected_output.append(output)
    return returncode, output


def test_crash_hang_sigterm_resume_bit_identical(tmp_path):
    cache_dir = tmp_path / "svc-cache"
    proc, port = launch(cache_dir, fault_plan=chaos_plan())
    try:
        # ---- Phase 1: crash + hang + flaky faults are contained -----
        status, payload = request(port, "POST", "/sweep",
                                  {"tenant": "chaos", "grid": GRID})
        assert status == 206  # the crash cell is the only gap
        assert payload["counts"]["ok"] == 7
        assert payload["counts"]["failed"] == 1
        failed = [entry for entry in payload["specs"]
                  if entry["status"] == "failed"][0]
        assert (failed["workload"], failed["mode"],
                failed["iteration"]) == ("saxpy", "standard", 0)
        assert "quarantined" in failed["error"]
        hang_cell = [entry for entry in payload["specs"]
                     if entry["workload"] == "vector_seq"
                     and entry["mode"] == "uvm"
                     and entry["iteration"] == 1][0]
        assert hang_cell["status"] == "ok"
        assert hang_cell["attempts"] == 2  # timed out once, retried
        status, health = request(port, "GET", "/healthz", timeout=10.0)
        assert status == 200  # a SIGKILL'd worker is not our death

        # ---- Phase 2: SIGTERM mid-grid -------------------------------
        held = []

        def slow_request():
            try:
                held.append(request(port, "POST", "/sweep",
                                    {"tenant": "chaos",
                                     "specs": SLOW_SPECS,
                                     "deadline_s": None}))
            except (urllib.error.URLError, ConnectionError, OSError) as e:
                held.append(e)

        poster = threading.Thread(target=slow_request)
        poster.start()
        time.sleep(2.5)  # a batch is executing, the rest are queued
        returncode, output = drain_and_reap(proc)
        poster.join(timeout=90)
        assert returncode == 0, output
        assert "[serve] stopped" in output
        assert held, "held request never completed"
        assert not isinstance(held[0], Exception), held[0]
        status, payload = held[0]
        # The drain gave the held request an explicit partial response
        # with every flushed spec annotated, not a dropped socket.
        assert status == 206
        drained = [entry for entry in payload["specs"]
                   if entry["status"] == "skipped"]
        assert drained
        assert all("draining" in entry["error"] for entry in drained)
        assert "checkpointed pending" in output
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    # ---- Phase 3: restart --resume, no faults this time -------------
    proc, port = launch(cache_dir, resume=True)
    try:
        wait_scheduler_idle(port)
        status, grid_payload = request(port, "POST", "/sweep",
                                       {"tenant": "after",
                                        "grid": GRID})
        assert status == 200  # the crashing cell reruns cleanly now
        status, slow_payload = request(port, "POST", "/sweep",
                                       {"tenant": "after",
                                        "specs": SLOW_SPECS})
        assert status == 200
        assert all(entry["cache"] in ("hot", "disk")
                   for entry in slow_payload["specs"])
    finally:
        returncode, output = drain_and_reap(proc)
        assert returncode == 0, output

    # ---- The acceptance bar: bit-identical to a clean serial sweep --
    grid_records = [json.dumps(entry["record"], sort_keys=True)
                    for entry in grid_payload["specs"]]
    assert grid_records == serial_records(grid_specs())
    slow_records = [json.dumps(entry["record"], sort_keys=True)
                    for entry in slow_payload["specs"]]
    assert slow_records == serial_records(
        [RunSpec(**entry) for entry in SLOW_SPECS])
