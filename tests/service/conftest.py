import pytest

from repro.harness import faults


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """Service tests inject faults; never leak a plan across tests."""
    faults.clear()
    yield
    faults.clear()
