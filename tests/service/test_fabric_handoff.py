"""Service -> fabric hand-off: ``fabric_workers > 0`` routes scheduler
batches through the distributed sweep fabric."""

import asyncio

import pytest

from repro.fabric import FabricRoot
from repro.service import ServiceConfig

from .harness import (GRID, grid_specs, live_service, response_records,
                      serial_records, sweep)


def fabric_roots(tmp_path):
    base = tmp_path / "svc-cache" / "fabric"
    return sorted(base.iterdir()) if base.exists() else []


def total_commits(roots):
    return sum(len([e for e in FabricRoot(root).journal().events()
                    if e["event"] == "commit"]) for root in roots)


def test_fabric_workers_validation():
    with pytest.raises(ValueError, match="fabric_workers"):
        ServiceConfig(fabric_workers=-1)
    assert ServiceConfig().fabric_workers == 0  # classic path default


def test_sweep_through_fabric_is_bit_identical(tmp_path):
    async def scenario():
        async with live_service(tmp_path, fabric_workers=2,
                                batch_size=8) as service:
            return await sweep(service.port, "acme", grid=GRID)

    status, _, payload = asyncio.run(scenario())
    assert status == 200
    specs = grid_specs()
    assert response_records(payload) == serial_records(specs)

    # Every scheduler batch ran on its own fabric root under the
    # service cache; across the roots there is exactly one commit per
    # spec and no lease left behind.
    roots = fabric_roots(tmp_path)
    assert roots
    assert total_commits(roots) == len(specs)
    for root in roots:
        assert FabricRoot(root).leases().all_leases() == {}

    # Results were copied into the service's content-addressed disk
    # cache, the same path CLI sweeps read.
    entries = list((tmp_path / "svc-cache").glob("??/*.json"))
    assert len(entries) >= len(specs)


def test_identical_batch_replays_from_fabric_root(tmp_path):
    """Same batch content -> same fabric root -> journal replay."""
    async def scenario():
        async with live_service(tmp_path, fabric_workers=2,
                                batch_size=8, hot_capacity=0) as service:
            first = await sweep(service.port, "acme", grid=GRID)
        roots_after_first = fabric_roots(tmp_path)
        async with live_service(tmp_path, fabric_workers=2,
                                batch_size=8, hot_capacity=0) as service:
            second = await sweep(service.port, "acme", grid=GRID)
        return first, roots_after_first, second

    first, roots_after_first, second = asyncio.run(scenario())
    assert first[0] == 200 and second[0] == 200
    assert response_records(first[2]) == response_records(second[2])
    # Identical batch content -> identical digests -> the same fabric
    # roots are reused, and the replay commits nothing new.
    roots = fabric_roots(tmp_path)
    assert roots == roots_after_first
    assert total_commits(roots) == len(grid_specs())
