"""Shared helpers for driving a live in-process :class:`ReproService`.

No third-party HTTP client and no pytest-asyncio: tests are plain sync
functions that ``asyncio.run`` a scenario coroutine. All HTTP goes
through :func:`http`, a minimal ``asyncio.open_connection`` client —
blocking clients (urllib & co) must never run on the event-loop thread
that is also serving the request (instant deadlock).
"""

import asyncio
import contextlib
import json

from repro.core.configs import TransferMode
from repro.harness.executor import SweepExecutor, expand_grid
from repro.harness.store import run_to_record
from repro.service import ReproService, ServiceConfig
from repro.service import drain as drain_service

#: Small but representative request grid: 2 workloads x 2 modes x 2
#: iterations = 8 specs.
GRID = {"workloads": ["vector_seq", "saxpy"], "sizes": ["tiny"],
        "modes": ["standard", "uvm"], "iterations": 2}


def grid_specs(grid=None):
    grid = grid or GRID
    return expand_grid(
        grid["workloads"], grid["sizes"],
        modes=[TransferMode.from_label(m) for m in grid["modes"]],
        iterations=grid["iterations"],
        base_seed=grid.get("base_seed", 1234))


def serial_records(specs):
    """The ground truth: a plain uncached single-process sweep."""
    runs = SweepExecutor(jobs=1).run(list(specs))
    return [json.dumps(run_to_record(run, with_counters=True),
                       sort_keys=True)
            for run in runs]


def response_records(payload):
    """Spec records from a /sweep response, canonically serialized."""
    return [json.dumps(entry["record"], sort_keys=True)
            for entry in payload["specs"]]


@contextlib.asynccontextmanager
async def live_service(cache_dir, **overrides):
    """A started service on an ephemeral port; drained on exit."""
    settings = dict(port=0, cache_dir=cache_dir / "svc-cache",
                    backend="thread", jobs=2, slots=2, batch_size=4,
                    retries=0, timeout_s=None, hot_capacity=256)
    settings.update(overrides)
    service = ReproService(ServiceConfig(**settings))
    await service.start()
    try:
        yield service
    finally:
        await drain_service(service)


async def http(port, method, path, body=None, raw=None):
    """One request against ``127.0.0.1:port``; returns
    ``(status, headers, json_payload)``."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    if raw is None:
        raw = b"" if body is None else json.dumps(body).encode("utf-8")
    writer.write((f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
                  f"Content-Length: {len(raw)}\r\n\r\n").encode("latin-1")
                 + raw)
    await writer.drain()
    response = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head, _, payload = response.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, (json.loads(payload) if payload else {})


async def sweep(port, tenant, grid=None, specs=None, deadline_s="unset"):
    body = {"tenant": tenant}
    if grid is not None:
        body["grid"] = grid
    if specs is not None:
        body["specs"] = specs
    if deadline_s != "unset":
        body["deadline_s"] = deadline_s
    return await http(port, "POST", "/sweep", body=body)
