"""Unit battery for the fair-share scheduler and circuit breaker.

The executor is faked: ``execute_batch`` stubs record what the
scheduler dispatched and settle synthetic outcomes, so these tests pin
scheduling semantics (rotation, dedup, abandon, drain, containment)
without paying for real sweeps.
"""

import asyncio
import threading

import pytest

from repro.harness.resilience import SpecOutcome, SpecStatus, SweepOutcome
from repro.service import CircuitBreaker, FairShareScheduler


def outcome_for(spec, status=SpecStatus.OK, from_cache=False):
    return SpecOutcome(spec=spec, index=0, status=status,
                       from_cache=from_cache, attempts=1)


def ok_batch(specs, engine):
    return SweepOutcome(outcomes=[outcome_for(spec) for spec in specs])


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_reference_engine_makes_it_inert(self):
        breaker = CircuitBreaker("reference", threshold=1)
        for _ in range(5):
            breaker.record(outcome_for(None, SpecStatus.FAILED))
        assert breaker.state == "closed"
        assert breaker.select() == "reference"
        assert not breaker.active

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("fast", threshold=3)
        breaker.record(outcome_for(None, SpecStatus.FAILED))
        breaker.record(outcome_for(None, SpecStatus.FAILED))
        assert breaker.select() == "fast"  # not yet
        breaker.record(outcome_for(None, SpecStatus.FAILED))
        assert breaker.state == "open"
        assert breaker.select() == "reference"
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker("fast", threshold=2)
        breaker.record(outcome_for(None, SpecStatus.FAILED))
        breaker.record(outcome_for(None))  # streak broken
        breaker.record(outcome_for(None, SpecStatus.FAILED))
        assert breaker.state == "closed"

    def test_cache_hits_and_skips_say_nothing(self):
        breaker = CircuitBreaker("fast", threshold=1)
        breaker.record(outcome_for(None, SpecStatus.FAILED,
                                   from_cache=True))
        breaker.record(outcome_for(None, SpecStatus.SKIPPED))
        assert breaker.state == "closed"

    def test_recovery_path_reopens_then_closes(self):
        breaker = CircuitBreaker("fast", threshold=1, recovery=2)
        breaker.record(outcome_for(None, SpecStatus.TIMED_OUT))
        assert breaker.state == "open"
        breaker.record(outcome_for(None))  # fallback success 1
        assert breaker.state == "open"
        breaker.record(outcome_for(None))  # fallback success 2
        assert breaker.state == "half_open"
        assert breaker.select() == "fast"  # probing the real engine
        breaker.record(outcome_for(None))
        assert breaker.state == "closed"

    def test_half_open_failure_retrips(self):
        breaker = CircuitBreaker("fast", threshold=1, recovery=1)
        breaker.record(outcome_for(None, SpecStatus.FAILED))
        breaker.record(outcome_for(None))  # -> half_open
        assert breaker.state == "half_open"
        breaker.record(outcome_for(None, SpecStatus.FAILED))
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("fast", threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("fast", recovery=0)

    def test_snapshot_shape(self):
        snapshot = CircuitBreaker("vector").snapshot()
        assert snapshot == {"state": "closed", "configured": "vector",
                            "serving": "vector", "trips": 0,
                            "consecutive_failures": 0,
                            "fallback_successes": 0}


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
class TestDedup:
    def test_identical_keys_share_one_job(self):
        async def scenario():
            release = threading.Event()

            def execute(specs, engine):
                release.wait(5)
                return ok_batch(specs, engine)

            scheduler = FairShareScheduler(execute, batch_size=4, slots=1)
            # Occupy the slot so later submissions stay queued.
            scheduler.submit("ops", "plug", "key-plug")
            await asyncio.sleep(0.05)
            job, created = scheduler.submit("alice", "s1", "key-1")
            dup, dup_created = scheduler.submit("bob", "s1", "key-1")
            assert created and not dup_created
            assert dup is job
            assert job.waiters == 2
            assert job.tenants == {"alice", "bob"}
            assert scheduler.stats.dedup_hits == 1
            release.set()
            assert await scheduler.wait_idle(timeout=5)
            assert job.future.result().ok

        asyncio.run(scenario())


class TestFairShare:
    def test_rotation_interleaves_tenants(self):
        async def scenario():
            release = threading.Event()
            batches = []

            def execute(specs, engine):
                batches.append(list(specs))
                if specs == ["plug"]:
                    release.wait(5)
                return ok_batch(specs, engine)

            scheduler = FairShareScheduler(execute, batch_size=4, slots=1)
            scheduler.submit("ops", "plug", "key-plug")
            await asyncio.sleep(0.05)
            for i in range(6):
                scheduler.submit("bulk", f"b{i}", f"kb{i}")
            for i in range(2):
                scheduler.submit("light", f"l{i}", f"kl{i}")
            release.set()
            assert await scheduler.wait_idle(timeout=5)
            # The first post-plug batch alternates bulk/light: the bulk
            # tenant's head start does not buy it the whole batch.
            assert batches[0] == ["plug"]
            assert batches[1] == ["b0", "l0", "b1", "l1"]
            assert batches[2] == ["b2", "b3", "b4", "b5"]

        asyncio.run(scenario())


class TestAbandon:
    def test_last_waiter_cancels_a_queued_job(self):
        async def scenario():
            release = threading.Event()

            def execute(specs, engine):
                release.wait(5)
                return ok_batch(specs, engine)

            scheduler = FairShareScheduler(execute, batch_size=4, slots=1)
            scheduler.submit("ops", "plug", "key-plug")
            await asyncio.sleep(0.05)
            job, _ = scheduler.submit("alice", "s1", "key-1")
            assert scheduler.abandon(job) is True
            outcome = job.future.result()
            assert outcome.status is SpecStatus.SKIPPED
            assert "abandoned" in outcome.error
            assert scheduler.stats.cancelled == 1
            # The key left the dedup map: a retry re-executes it.
            retry, created = scheduler.submit("alice", "s1", "key-1")
            assert created and retry is not job
            release.set()
            assert await scheduler.wait_idle(timeout=5)
            assert retry.future.result().ok

        asyncio.run(scenario())

    def test_earlier_waiters_do_not_cancel(self):
        async def scenario():
            release = threading.Event()

            def execute(specs, engine):
                release.wait(5)
                return ok_batch(specs, engine)

            scheduler = FairShareScheduler(execute, batch_size=4, slots=1)
            scheduler.submit("ops", "plug", "key-plug")
            await asyncio.sleep(0.05)
            job, _ = scheduler.submit("alice", "s1", "key-1")
            scheduler.submit("bob", "s1", "key-1")
            assert scheduler.abandon(job) is False  # bob still waits
            assert not job.cancelled
            release.set()
            assert await scheduler.wait_idle(timeout=5)
            assert job.future.result().ok

        asyncio.run(scenario())

    def test_resume_jobs_are_never_abandoned(self):
        async def scenario():
            release = threading.Event()

            def execute(specs, engine):
                release.wait(5)
                return ok_batch(specs, engine)

            scheduler = FairShareScheduler(execute, batch_size=4, slots=1)
            scheduler.submit("ops", "plug", "key-plug")
            await asyncio.sleep(0.05)
            job, _ = scheduler.submit("__resume__", "s1", "key-1",
                                      source="resume")
            assert scheduler.abandon(job) is False
            release.set()
            assert await scheduler.wait_idle(timeout=5)
            assert job.future.result().ok

        asyncio.run(scenario())


class TestContainment:
    def test_wholesale_batch_error_settles_its_own_jobs_only(self):
        async def scenario():
            def execute(specs, engine):
                if "poison" in specs:
                    raise RuntimeError("executor exploded")
                return ok_batch(specs, engine)

            scheduler = FairShareScheduler(execute, batch_size=1, slots=1)
            poisoned, _ = scheduler.submit("alice", "poison", "key-p")
            healthy, _ = scheduler.submit("alice", "fine", "key-f")
            assert await scheduler.wait_idle(timeout=5)
            bad = poisoned.future.result()
            assert bad.status is SpecStatus.FAILED
            assert "batch execution error" in bad.error
            assert "executor exploded" in bad.error
            assert healthy.future.result().ok  # the loop survived
            assert scheduler.stats.batch_errors == 1

        asyncio.run(scenario())

    def test_torn_batch_is_a_contained_failure(self):
        async def scenario():
            def execute(specs, engine):
                return SweepOutcome(outcomes=[])  # wrong cardinality

            scheduler = FairShareScheduler(execute, batch_size=2, slots=1)
            job, _ = scheduler.submit("alice", "s1", "key-1")
            assert await scheduler.wait_idle(timeout=5)
            assert job.future.result().status is SpecStatus.FAILED
            assert scheduler.stats.batch_errors == 1

        asyncio.run(scenario())

    def test_settle_hook_bugs_stay_local(self):
        async def scenario():
            def bad_hook(job, outcome):
                raise RuntimeError("hook bug")

            scheduler = FairShareScheduler(ok_batch, batch_size=2,
                                           slots=1, on_settle=bad_hook)
            job, _ = scheduler.submit("alice", "s1", "key-1")
            assert await scheduler.wait_idle(timeout=5)
            assert job.future.result().ok  # settled despite the hook

        asyncio.run(scenario())


class TestDrain:
    def test_drain_flushes_queued_and_waits_for_running(self):
        async def scenario():
            release = threading.Event()
            settled = []

            def execute(specs, engine):
                release.wait(5)
                return ok_batch(specs, engine)

            scheduler = FairShareScheduler(
                execute, batch_size=1, slots=1,
                on_settle=lambda job, outcome: settled.append(
                    (job.key, job.drained, outcome.status)))
            running, _ = scheduler.submit("alice", "s1", "key-1")
            await asyncio.sleep(0.05)  # batch for s1 now occupies the slot
            queued, _ = scheduler.submit("alice", "s2", "key-2")
            drain_task = asyncio.get_running_loop().create_task(
                scheduler.drain(grace_s=5))
            await asyncio.sleep(0.05)
            release.set()
            flushed = await drain_task
            assert flushed == 1
            drained = queued.future.result()
            assert drained.status is SpecStatus.SKIPPED
            assert "draining" in drained.error
            assert queued.drained  # journal keeps its pending record
            assert running.future.result().ok  # grace let it finish
            assert ("key-2", True, SpecStatus.SKIPPED) in settled
            assert ("key-1", False, SpecStatus.OK) in settled
            # Draining schedulers accept no new batches.
            late, _ = scheduler.submit("alice", "s3", "key-3")
            assert scheduler.queued_jobs() == 1
            assert not late.future.done()

        asyncio.run(scenario())
