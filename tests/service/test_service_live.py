"""Live battery: a real :class:`ReproService` on an ephemeral port.

Every test starts the actual asyncio server, talks to it over real
sockets, and asserts the contract ``docs/SERVICE.md`` documents:
bit-identical results, hot/disk cache behaviour, in-flight dedup,
fair-share scheduling, 429 load shedding, deadline partials, failure
containment, breaker fallback, and drain/resume checkpointing.
"""

import asyncio
import json

from repro.harness import faults
from repro.service import (AdmissionLimits, ReproService, ServiceConfig,
                           resume_pending)
from repro.service import drain as drain_service

from .harness import (GRID, grid_specs, http, live_service,
                      response_records, serial_records, sweep)


def plan_for(specs, kind, attempts=(), **kwargs):
    return faults.FaultPlan(faults=tuple(
        faults.Fault.for_spec(spec, kind=kind, attempts=attempts,
                              **kwargs) for spec in specs))


# ----------------------------------------------------------------------
# Endpoints + request validation
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_health_stats_and_client_errors(self, tmp_path):
        async def scenario():
            async with live_service(tmp_path) as service:
                port = service.port
                status, _, payload = await http(port, "GET", "/healthz")
                assert (status, payload["status"]) == (200, "ok")
                assert payload["draining"] is False
                status, _, payload = await http(port, "GET", "/readyz")
                assert (status, payload["status"]) == (200, "ready")
                status, _, payload = await http(port, "GET", "/stats")
                assert status == 200
                assert payload["scheduler"]["breaker"]["state"] == "closed"
                assert payload["admission"]["pending_specs"] == 0

                status, _, _ = await http(port, "GET", "/nope")
                assert status == 404
                status, _, _ = await http(port, "DELETE", "/sweep")
                assert status == 405
                status, _, payload = await http(port, "POST", "/sweep",
                                                raw=b"{not json")
                assert status == 400
                assert "JSON" in payload["error"]
                status, _, payload = await sweep(
                    port, "t", grid={"workloads": ["saxpy"],
                                     "sizes": ["tiny"],
                                     "modes": ["warp_drive"]})
                assert status == 400
                assert "unknown transfer mode" in payload["error"]
                status, _, payload = await sweep(
                    port, "t", grid={"workloads": [], "sizes": []})
                assert status == 400
                status, _, payload = await sweep(
                    port, "t", grid={"workloads": ["saxpy"],
                                     "sizes": ["tiny"]},
                    deadline_s=-2)
                assert status == 400
                assert "deadline_s" in payload["error"]
                status, _, payload = await http(port, "POST", "/sweep",
                                                body={"tenant": "t"})
                assert status == 400
                assert "'specs' list or a 'grid'" in payload["error"]
                # A broken request never poisons the next one.
                status, _, _ = await http(port, "GET", "/healthz")
                assert status == 200

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Results: correctness + caches
# ----------------------------------------------------------------------
class TestSweepResults:
    def test_grid_sweep_is_bit_identical_to_serial_cli(self, tmp_path):
        async def scenario():
            async with live_service(tmp_path) as service:
                status, _, payload = await sweep(service.port, "alice",
                                                 grid=GRID)
                assert status == 200
                assert payload["complete"] is True
                assert payload["counts"] == {"ok": 8}
                assert payload["deadline_expired"] is False
                assert len(payload["specs"]) == 8
                return payload

        payload = asyncio.run(scenario())
        # Byte-for-byte what a plain serial sweep computes, in the same
        # deterministic expansion order.
        assert response_records(payload) == serial_records(grid_specs())

    def test_repeat_request_is_served_from_the_hot_cache(self, tmp_path):
        async def scenario():
            async with live_service(tmp_path) as service:
                first = await sweep(service.port, "alice", grid=GRID)
                second = await sweep(service.port, "bob", grid=GRID)
                _, _, stats = await http(service.port, "GET", "/stats")
                return first, second, stats

        (s1, _, p1), (s2, _, p2), stats = asyncio.run(scenario())
        assert (s1, s2) == (200, 200)
        assert all(entry["cache"] == "hot" for entry in p2["specs"])
        assert response_records(p1) == response_records(p2)
        assert stats["scheduler"]["executed"] == 8  # nothing ran twice
        assert stats["hot_cache"]["hits"] == 8

    def test_explicit_specs_payload(self, tmp_path):
        async def scenario():
            async with live_service(tmp_path) as service:
                return await sweep(service.port, "alice", specs=[
                    {"workload": "saxpy", "size": "tiny", "mode": "uvm",
                     "iteration": 5, "base_seed": 777}])

        status, _, payload = asyncio.run(scenario())
        assert status == 200
        entry = payload["specs"][0]
        assert (entry["workload"], entry["mode"],
                entry["iteration"]) == ("saxpy", "uvm", 5)

    def test_concurrent_identical_requests_dedup_in_flight(self, tmp_path):
        async def scenario():
            async with live_service(tmp_path) as service:
                faults.install(plan_for(grid_specs(), faults.KIND_DELAY,
                                        delay_s=0.05))
                alice, bob = await asyncio.gather(
                    sweep(service.port, "alice", grid=GRID),
                    sweep(service.port, "bob", grid=GRID))
                _, _, stats = await http(service.port, "GET", "/stats")
                return alice, bob, stats

        (s1, _, p1), (s2, _, p2), stats = asyncio.run(scenario())
        assert (s1, s2) == (200, 200)
        assert response_records(p1) == response_records(p2)
        # Both tenants were satisfied by ONE execution per spec: 16
        # requested slots, 8 executions, and every second touch of a
        # key either joined the in-flight job or hit the hot cache.
        assert stats["scheduler"]["executed"] == 8
        assert stats["scheduler"]["dedup_hits"] \
            + stats["hot_cache"]["hits"] == 8


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestLoadShedding:
    def test_429_when_the_spec_queue_is_full(self, tmp_path):
        async def scenario():
            limits = AdmissionLimits(max_pending_specs=8,
                                     retry_after_s=2.5)
            async with live_service(tmp_path, limits=limits,
                                    slots=1, jobs=1) as service:
                faults.install(plan_for(grid_specs(), faults.KIND_DELAY,
                                        delay_s=0.1))
                hog = asyncio.ensure_future(
                    sweep(service.port, "hog", grid=GRID))
                await asyncio.sleep(0.05)  # hog now owns all 8 slots
                shed = await sweep(service.port, "late", grid=GRID)
                hog_response = await hog
                _, _, stats = await http(service.port, "GET", "/stats")
                return shed, hog_response, stats

        (status, headers, payload), (hog_status, _, _), stats = \
            asyncio.run(scenario())
        assert status == 429
        assert headers["retry-after"] == "2.5"
        assert payload["retry_after_s"] == 2.5
        assert "queue depth" in payload["error"]
        assert stats["admission"]["shed"]["queue_full"] == 1
        assert hog_status == 200  # shedding never harms admitted work

    def test_429_when_too_many_concurrent_requests(self, tmp_path):
        async def scenario():
            limits = AdmissionLimits(max_requests=1)
            async with live_service(tmp_path, limits=limits,
                                    slots=1, jobs=1) as service:
                specs = grid_specs()
                faults.install(plan_for(specs, faults.KIND_DELAY,
                                        delay_s=0.1))
                hog = asyncio.ensure_future(
                    sweep(service.port, "hog", grid=GRID))
                await asyncio.sleep(0.05)
                shed = await sweep(service.port, "late", specs=[
                    {"workload": "saxpy", "size": "tiny",
                     "iteration": 9}])
                await hog
                return shed

        status, headers, payload = asyncio.run(scenario())
        assert status == 429
        assert "concurrent requests" in payload["error"]
        assert "retry-after" in headers


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_deadline_returns_an_annotated_partial(self, tmp_path):
        async def scenario():
            async with live_service(tmp_path, slots=1, jobs=1,
                                    batch_size=2) as service:
                specs = grid_specs()
                faults.install(plan_for(specs, faults.KIND_DELAY,
                                        delay_s=0.25))
                partial = await sweep(service.port, "alice", grid=GRID,
                                      deadline_s=0.2)
                # The work the deadline walked away from must not leak:
                # once idle, a faultless repeat completes fully.
                await service.scheduler.wait_idle(timeout=30)
                faults.clear()
                complete = await sweep(service.port, "alice", grid=GRID,
                                       deadline_s=None)
                return partial, complete

        (status, _, payload), (status2, _, payload2) = asyncio.run(scenario())
        assert status == 206  # the HTTP spelling of CLI exit code 3
        assert payload["complete"] is False
        assert payload["deadline_expired"] is True
        assert payload["counts"].get("skipped", 0) >= 1
        skipped = [entry for entry in payload["specs"]
                   if entry["status"] == "skipped"]
        assert skipped
        assert all("deadline" in entry["error"] for entry in skipped)
        assert status2 == 200
        assert payload2["complete"] is True

    def test_deadline_zero_point_is_still_a_response(self, tmp_path):
        async def scenario():
            async with live_service(tmp_path) as service:
                return await sweep(service.port, "alice", grid=GRID,
                                   deadline_s=0.001)

        status, _, payload = asyncio.run(scenario())
        assert status in (200, 206)  # fast machines may finish anyway
        assert len(payload["specs"]) == 8


# ----------------------------------------------------------------------
# Fair share
# ----------------------------------------------------------------------
class TestFairShare:
    def test_bulk_tenant_cannot_starve_a_light_tenant(self, tmp_path):
        bulk_specs = [{"workload": "vector_seq", "size": "tiny",
                       "mode": "standard", "iteration": i}
                      for i in range(10)]
        light_specs = [{"workload": "saxpy", "size": "tiny",
                        "mode": "standard", "iteration": i}
                       for i in range(2)]

        async def scenario():
            async with live_service(tmp_path, slots=1, jobs=1,
                                    batch_size=2) as service:
                order = []
                forward = service.scheduler.on_settle

                def recorder(job, outcome):
                    order.append(job.tenant)
                    forward(job, outcome)

                service.scheduler.on_settle = recorder
                faults.install(plan_for(
                    service._parse_specs({"specs": bulk_specs}),
                    faults.KIND_DELAY, delay_s=0.03))
                bulk = asyncio.ensure_future(
                    sweep(service.port, "bulk", specs=bulk_specs))
                await asyncio.sleep(0.02)  # bulk is queued first
                light = await sweep(service.port, "light",
                                    specs=light_specs)
                bulk_response = await bulk
                return bulk_response, light, order

        (bulk_status, _, _), (light_status, _, light_payload), order = \
            asyncio.run(scenario())
        assert bulk_status == 200
        assert light_status == 200
        assert light_payload["complete"] is True
        # Round-robin: both light specs settle well before the bulk
        # tenant's 10-spec backlog is through — a bounded wait, not a
        # ride at the back of the bulk queue.
        light_positions = [i for i, tenant in enumerate(order)
                           if tenant == "light"]
        assert len(light_positions) == 2
        assert max(light_positions) < 8, order


# ----------------------------------------------------------------------
# Failure containment + degradation
# ----------------------------------------------------------------------
class TestContainment:
    def test_failing_spec_degrades_only_itself(self, tmp_path):
        async def scenario():
            async with live_service(tmp_path) as service:
                specs = grid_specs()
                faults.install(faults.FaultPlan(faults=(
                    faults.Fault.for_spec(specs[0], kind=faults.KIND_FAIL,
                                          attempts=()),)))
                response = await sweep(service.port, "alice", grid=GRID)
                health = await http(service.port, "GET", "/healthz")
                return response, health

        (status, _, payload), (health_status, _, _) = asyncio.run(scenario())
        assert status == 206
        assert payload["counts"] == {"ok": 7, "failed": 1}
        failed = [entry for entry in payload["specs"]
                  if entry["status"] == "failed"]
        assert len(failed) == 1
        assert failed[0]["iteration"] == 0
        assert failed[0]["error"]
        assert health_status == 200  # one bad spec, zero blast radius

    def test_crashing_spec_is_quarantined_not_fatal(self, tmp_path):
        async def scenario():
            async with live_service(tmp_path, backend="process",
                                    jobs=1, slots=1, timeout_s=10.0,
                                    batch_size=8) as service:
                specs = grid_specs()
                faults.install(faults.FaultPlan(faults=(
                    faults.Fault.for_spec(specs[0],
                                          kind=faults.KIND_CRASH,
                                          attempts=()),)))
                response = await sweep(service.port, "alice", grid=GRID,
                                       deadline_s=120)
                health = await http(service.port, "GET", "/healthz")
                return response, health

        (status, _, payload), (health_status, _, _) = asyncio.run(scenario())
        assert status == 206
        assert health_status == 200  # SIGKILL hit a worker, not us
        by_status = payload["counts"]
        assert by_status.get("ok") == 7
        assert by_status.get("failed") == 1
        failed = [entry for entry in payload["specs"]
                  if entry["status"] == "failed"][0]
        assert "quarantined" in failed["error"]

    def test_breaker_trips_to_reference_and_recovers(self, tmp_path):
        async def scenario():
            async with live_service(tmp_path, engine="fast",
                                    breaker_threshold=2,
                                    breaker_recovery=1, slots=1,
                                    jobs=1, batch_size=2) as service:
                specs = grid_specs()
                faults.install(plan_for(specs, faults.KIND_FAIL))
                broken = await sweep(service.port, "alice", grid=GRID)
                tripped = service.breaker.snapshot()
                faults.clear()
                fresh = [{"workload": "saxpy", "size": "tiny",
                          "iteration": 20 + i} for i in range(4)]
                healed = await sweep(service.port, "alice", specs=fresh)
                return broken, tripped, healed, service.breaker.snapshot()

        (bs, _, bp), tripped, (hs, _, hp), recovered = asyncio.run(scenario())
        assert bs == 206
        assert bp["counts"] == {"failed": 8}
        assert tripped["state"] == "open"
        assert tripped["trips"] == 1
        assert tripped["serving"] == "reference"  # degraded, still up
        assert hs == 200
        assert hp["complete"] is True
        # Fallback successes re-arm the configured engine.
        assert recovered["state"] == "closed"
        assert recovered["serving"] == "fast"


# ----------------------------------------------------------------------
# Flaky disk + hot cache interplay
# ----------------------------------------------------------------------
class TestFlakyDisk:
    def test_transient_read_errors_are_retried_to_a_hit(self, tmp_path):
        async def scenario():
            async with live_service(tmp_path) as service:
                first = await sweep(service.port, "alice", grid=GRID)
                service.hot.clear()  # force the disk path
                faults.install(plan_for(grid_specs(),
                                        faults.KIND_FLAKY_IO,
                                        attempts=(1,)))
                second = await sweep(service.port, "bob", grid=GRID)
                return first, second

        (s1, _, p1), (s2, _, p2) = asyncio.run(scenario())
        assert (s1, s2) == (200, 200)
        assert all(entry["cache"] == "disk" for entry in p2["specs"])
        assert response_records(p1) == response_records(p2)

    def test_permanent_read_errors_degrade_to_recompute(self, tmp_path):
        async def scenario():
            async with live_service(tmp_path) as service:
                first = await sweep(service.port, "alice", grid=GRID)
                service.hot.clear()
                faults.install(plan_for(grid_specs(),
                                        faults.KIND_FLAKY_IO))
                second = await sweep(service.port, "bob", grid=GRID)
                return first, second

        (s1, _, p1), (s2, _, p2) = asyncio.run(scenario())
        assert (s1, s2) == (200, 200)
        assert all(entry["cache"] == "none" for entry in p2["specs"])
        # Recomputed, yet bit-identical: determinism is the backstop.
        assert response_records(p1) == response_records(p2)


# ----------------------------------------------------------------------
# Drain + resume
# ----------------------------------------------------------------------
class TestDrainResume:
    GRID6 = {"workloads": ["vector_seq", "saxpy"], "sizes": ["tiny"],
             "modes": ["standard"], "iterations": 3}

    def test_drain_checkpoints_and_resume_finishes_bit_identically(
            self, tmp_path):
        cache_dir = tmp_path / "svc-cache"

        async def interrupted():
            service = ReproService(ServiceConfig(
                port=0, cache_dir=cache_dir, backend="thread", jobs=1,
                slots=1, batch_size=2, retries=0, timeout_s=None))
            await service.start()
            specs = grid_specs(self.GRID6)
            faults.install(plan_for(specs, faults.KIND_DELAY,
                                    delay_s=0.15))
            held = asyncio.ensure_future(
                sweep(service.port, "alice", grid=self.GRID6,
                      deadline_s=None))
            await asyncio.sleep(0.1)  # first batch in flight, rest queued
            flushed = await drain_service(service)
            status, _, payload = await held
            return flushed, status, payload

        flushed, status, payload = asyncio.run(interrupted())
        assert flushed >= 1
        assert status == 206  # held request got an explicit partial
        drained = [entry for entry in payload["specs"]
                   if entry["status"] == "skipped"]
        assert len(drained) == flushed
        assert all("draining" in entry["error"] for entry in drained)
        faults.clear()

        async def restarted():
            service = ReproService(ServiceConfig(
                port=0, cache_dir=cache_dir, backend="thread", jobs=1,
                slots=1, batch_size=2, retries=0, timeout_s=None))
            await service.start()
            try:
                resumed = await resume_pending(service)
                assert await service.scheduler.wait_idle(timeout=30)
                status, _, payload = await sweep(service.port, "alice",
                                                 grid=self.GRID6)
                return resumed, status, payload
            finally:
                await drain_service(service)

        resumed, status, payload = asyncio.run(restarted())
        assert resumed == flushed  # exactly the checkpointed jobs
        assert status == 200
        assert payload["complete"] is True
        # Nothing re-executes: resume + the first life's work filled
        # the caches...
        assert all(entry["cache"] in ("hot", "disk")
                   for entry in payload["specs"])
        # ...and the stitched-together grid is byte-for-byte what an
        # uninterrupted serial sweep computes.
        assert response_records(payload) == \
            serial_records(grid_specs(self.GRID6))

    def test_draining_server_refuses_new_sweeps(self, tmp_path):
        async def scenario():
            service = ReproService(ServiceConfig(
                port=0, cache_dir=tmp_path / "svc-cache",
                backend="thread", jobs=1))
            await service.start()
            try:
                await drain_service(service)
                # The listener is closed: readiness says so first.
                assert service.draining is True
                status, _, payload = await sweep(service.port, "alice",
                                                 grid=GRID)
            except (ConnectionError, OSError):
                return "refused"
            return status

        assert asyncio.run(scenario()) in ("refused", 503)
