"""TransferMode tests."""

import pytest

from repro.core.configs import ALL_MODES, TransferMode


class TestModes:
    def test_five_configurations(self):
        assert len(ALL_MODES) == 5
        assert [m.value for m in ALL_MODES] == [
            "standard", "async", "uvm", "uvm_prefetch",
            "uvm_prefetch_async"]

    @pytest.mark.parametrize("mode,managed,prefetch,uses_async", [
        (TransferMode.STANDARD, False, False, False),
        (TransferMode.ASYNC, False, False, True),
        (TransferMode.UVM, True, False, False),
        (TransferMode.UVM_PREFETCH, True, True, False),
        (TransferMode.UVM_PREFETCH_ASYNC, True, True, True),
    ])
    def test_property_matrix(self, mode, managed, prefetch, uses_async):
        assert mode.managed is managed
        assert mode.prefetch is prefetch
        assert mode.uses_async is uses_async

    def test_kernel_flags_consistent(self):
        for mode in ALL_MODES:
            flags = mode.kernel_flags()
            assert flags.managed is mode.managed
            assert flags.prefetched is mode.prefetch
            assert flags.use_async is mode.uses_async

    def test_from_label_roundtrip(self):
        for mode in ALL_MODES:
            assert TransferMode.from_label(mode.value) is mode

    def test_from_label_unknown(self):
        with pytest.raises(ValueError):
            TransferMode.from_label("warp_speed")
