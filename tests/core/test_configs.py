"""TransferMode tests."""

import pytest

from repro.core.configs import ALL_MODES, TransferMode


class TestModes:
    def test_five_configurations(self):
        assert len(ALL_MODES) == 5
        assert [m.value for m in ALL_MODES] == [
            "standard", "async", "uvm", "uvm_prefetch",
            "uvm_prefetch_async"]

    @pytest.mark.parametrize("mode,managed,prefetch,uses_async", [
        (TransferMode.STANDARD, False, False, False),
        (TransferMode.ASYNC, False, False, True),
        (TransferMode.UVM, True, False, False),
        (TransferMode.UVM_PREFETCH, True, True, False),
        (TransferMode.UVM_PREFETCH_ASYNC, True, True, True),
    ])
    def test_property_matrix(self, mode, managed, prefetch, uses_async):
        assert mode.managed is managed
        assert mode.prefetch is prefetch
        assert mode.uses_async is uses_async

    def test_kernel_flags_consistent(self):
        for mode in ALL_MODES:
            flags = mode.kernel_flags()
            assert flags.managed is mode.managed
            assert flags.prefetched is mode.prefetch
            assert flags.use_async is mode.uses_async

    def test_from_label_roundtrip(self):
        for mode in ALL_MODES:
            assert TransferMode.from_label(mode.value) is mode

    @pytest.mark.parametrize("mode,use_async,managed,prefetched", [
        (TransferMode.STANDARD, False, False, False),
        (TransferMode.ASYNC, True, False, False),
        (TransferMode.UVM, False, True, False),
        (TransferMode.UVM_PREFETCH, False, True, True),
        (TransferMode.UVM_PREFETCH_ASYNC, True, True, True),
    ])
    def test_kernel_flags_truth_table(self, mode, use_async, managed,
                                      prefetched):
        """The full flag truth table, independent of the mode's own
        properties (guards against the properties and the flags
        drifting apart in tandem)."""
        flags = mode.kernel_flags()
        assert (flags.use_async, flags.managed, flags.prefetched) == \
            (use_async, managed, prefetched)

    def test_label_matches_value(self):
        for mode in ALL_MODES:
            assert mode.label == mode.value

    def test_from_label_unknown(self):
        with pytest.raises(ValueError):
            TransferMode.from_label("warp_speed")

    def test_from_label_error_names_candidates(self):
        """The error message must carry the bad label and every valid
        choice, so CLI users can self-correct."""
        with pytest.raises(ValueError) as excinfo:
            TransferMode.from_label("warp_speed")
        message = str(excinfo.value)
        assert "warp_speed" in message
        for mode in ALL_MODES:
            assert mode.value in message

    @pytest.mark.parametrize("label", ["", "Standard", "UVM",
                                       " standard", "uvm-prefetch"])
    def test_from_label_is_exact_match(self, label):
        """Labels are case- and whitespace-sensitive: near-misses must
        raise rather than silently pick a mode."""
        with pytest.raises(ValueError):
            TransferMode.from_label(label)
