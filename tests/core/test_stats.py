"""Statistics helper tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (Summary, coefficient_of_variation,
                              confidence_interval_95, geomean,
                              improvement_pct, mean, normalize_to,
                              percentile, speedup, std)

positive_floats = st.lists(
    st.floats(min_value=0.1, max_value=1e6, allow_nan=False), min_size=1,
    max_size=50)


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_std_sample_formula(self):
        assert std([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == \
            pytest.approx(math.sqrt(32.0 / 7.0))

    def test_std_single_value_is_zero(self):
        assert std([5.0]) == 0.0

    def test_cv(self):
        assert coefficient_of_variation([10.0, 10.0]) == 0.0

    def test_cv_zero_mean_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([1.0, -1.0])


class TestGeomean:
    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    @given(positive_floats)
    @settings(max_examples=50, deadline=None)
    def test_between_min_and_max(self, values):
        result = geomean(values)
        assert min(values) * (1 - 1e-9) <= result <= max(values) * (1 + 1e-9)

    @given(positive_floats)
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_arithmetic_mean(self, values):
        assert geomean(values) <= mean(values) * (1 + 1e-9)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    @given(positive_floats, st.floats(min_value=0, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_within_range(self, values, q):
        result = percentile(values, q)
        assert min(values) * (1 - 1e-12) <= result <= \
            max(values) * (1 + 1e-12)


class TestSpeedupImprovement:
    def test_speedup(self):
        assert speedup(10.0, 5.0) == 2.0

    def test_improvement_pct(self):
        assert improvement_pct(100.0, 79.0) == pytest.approx(21.0)
        assert improvement_pct(100.0, 113.0) == pytest.approx(-13.0)

    def test_invalid_baselines(self):
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)
        with pytest.raises(ValueError):
            improvement_pct(0.0, 1.0)


class TestSummary:
    def test_summary_fields(self):
        summary = Summary.of([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == 2.5

    def test_cv_property(self):
        summary = Summary.of([10.0, 10.0, 10.0])
        assert summary.cv == 0.0

    @given(positive_floats)
    @settings(max_examples=40, deadline=None)
    def test_ordering_invariants(self, values):
        summary = Summary.of(values)
        epsilon = 1e-9 * max(summary.maximum, 1.0)
        assert summary.minimum - epsilon <= summary.p50 \
            <= summary.maximum + epsilon
        assert summary.minimum - epsilon <= summary.mean \
            <= summary.maximum + epsilon


class TestHelpers:
    def test_confidence_interval_contains_mean(self):
        low, high = confidence_interval_95([1.0, 2.0, 3.0])
        assert low <= 2.0 <= high

    def test_normalize_to(self):
        assert normalize_to(2.0, [2.0, 4.0, 1.0]) == [1.0, 2.0, 0.5]

    def test_normalize_invalid_baseline(self):
        with pytest.raises(ValueError):
            normalize_to(0.0, [1.0])


class TestSignificance:
    def test_clear_improvement_detected(self):
        from repro.core.stats import significantly_faster
        baseline = [100.0 + i % 3 for i in range(15)]
        candidate = [80.0 + i % 3 for i in range(15)]
        result = significantly_faster(baseline, candidate)
        assert result.faster
        assert result.significant
        assert result.median_speedup > 1.2

    def test_identical_distributions_not_significant(self):
        from repro.core.stats import significantly_faster
        sample = [100.0, 101.0, 99.0, 100.5, 99.5] * 3
        result = significantly_faster(sample, list(sample))
        assert not result.significant

    def test_small_samples_fall_back_to_medians(self):
        from repro.core.stats import significantly_faster
        result = significantly_faster([10.0, 11.0], [8.0, 9.0])
        assert result.faster
        assert not result.significant

    def test_validation(self):
        from repro.core.stats import significantly_faster
        with pytest.raises(ValueError):
            significantly_faster([], [1.0])
        with pytest.raises(ValueError):
            significantly_faster([1.0], [1.0], alpha=2.0)

    def test_on_real_runsets(self):
        from repro.core.configs import TransferMode
        from repro.core.experiment import Experiment
        from repro.core.stats import significantly_faster
        from repro.workloads.sizes import SizeClass
        experiment = Experiment(workload="vector_seq",
                                size=SizeClass.SUPER,
                                modes=(TransferMode.STANDARD,
                                       TransferMode.UVM_PREFETCH),
                                iterations=8)
        standard = experiment.run_mode(TransferMode.STANDARD)
        prefetch = experiment.run_mode(TransferMode.UVM_PREFETCH)
        result = significantly_faster(standard.totals(), prefetch.totals())
        assert result.faster
        assert result.significant
