"""Chunked multi-stream baseline tests."""

import pytest

from repro.core.configs import TransferMode
from repro.core.execution import execute_program
from repro.core.streaming import execute_program_streamed, slice_descriptor
from repro.workloads.registry import get_workload
from repro.workloads.sizes import SizeClass

from ..sim.test_kernel import make_descriptor


@pytest.fixture(scope="module")
def program():
    return get_workload("vector_seq").program(SizeClass.SUPER)


class TestSliceDescriptor:
    def test_divides_grid(self):
        descriptor = make_descriptor(blocks=128, write_bytes=4096)
        chunk = slice_descriptor(descriptor, 4)
        assert chunk.blocks == 32
        assert chunk.write_bytes == 1024

    def test_single_chunk_is_identity(self):
        descriptor = make_descriptor()
        assert slice_descriptor(descriptor, 1) == descriptor

    def test_validation(self):
        with pytest.raises(ValueError):
            slice_descriptor(make_descriptor(), 0)


class TestStreamedExecution:
    def test_unchunked_pageable_matches_standard_wall(self, program):
        streamed = execute_program_streamed(program, chunks=1,
                                            pinned=False, seed=3)
        standard = execute_program(program, TransferMode.STANDARD, seed=3)
        assert streamed.wall_ns == pytest.approx(standard.wall_ns,
                                                 rel=0.05)

    def test_pinned_memory_tradeoff(self, program):
        """cudaMallocHost costs pin time but buys full-bandwidth DMA."""
        pageable = execute_program_streamed(program, chunks=8,
                                            pinned=False, seed=3)
        pinned = execute_program_streamed(program, chunks=8,
                                          pinned=True, seed=3)
        assert pinned.memcpy_ns < pageable.memcpy_ns
        assert pinned.alloc_ns > pageable.alloc_ns

    def test_chunking_overlaps_copy_and_compute(self, program):
        one = execute_program_streamed(program, chunks=1, seed=3)
        many = execute_program_streamed(program, chunks=8, seed=3)
        # Wall time drops with overlap...
        assert many.wall_ns < one.wall_ns
        # ...while the total work (sum of components) stays put.
        assert many.total_ns == pytest.approx(one.total_ns, rel=0.05)

    def test_overlap_bounded_by_longest_stage(self, program):
        many = execute_program_streamed(program, chunks=16, seed=3)
        # Wall can never go below the dominant stage plus the serial parts.
        assert many.wall_ns > max(many.memcpy_ns / 2, many.alloc_ns)

    def test_prior_work_baseline_vs_uvm_prefetch(self, program):
        """The paper's pitch: even a diligent hand-tuned streaming
        implementation is beaten by uvm_prefetch on GB-scale inputs
        (which also avoids the D2H copies)."""
        streamed = execute_program_streamed(program, chunks=8, seed=3)
        prefetch = execute_program(program, TransferMode.UVM_PREFETCH,
                                   seed=3)
        assert prefetch.wall_ns < streamed.wall_ns

    def test_async_flag_composes(self, program):
        plain = execute_program_streamed(program, chunks=8, seed=3)
        with_async = execute_program_streamed(program, chunks=8,
                                              use_async=True, seed=3)
        # cp.async cuts the kernel stage further.
        assert with_async.kernel_ns < plain.kernel_ns

    def test_breakdown_keys(self, program):
        streamed = execute_program_streamed(program, chunks=2, seed=0)
        assert set(streamed.breakdown()) == {"gpu_kernel", "memcpy",
                                             "allocation"}

    def test_chunks_validated(self, program):
        with pytest.raises(ValueError):
            execute_program_streamed(program, chunks=0)
