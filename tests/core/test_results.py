"""RunResult / RunSet / ModeComparison tests."""

import pytest

from repro.core.configs import TransferMode
from repro.core.results import ModeComparison, RunResult, RunSet
from repro.sim.counters import CounterReport


def make_run(mode=TransferMode.STANDARD, alloc=100.0, memcpy=200.0,
             kernel=50.0, workload="w", seed=0, occupancy=0.4,
             gpu_busy=0.2):
    return RunResult(workload=workload, mode=mode, size="super", seed=seed,
                     alloc_ns=alloc, memcpy_ns=memcpy, kernel_ns=kernel,
                     wall_ns=alloc + memcpy + kernel,
                     counters=CounterReport(), occupancy=occupancy,
                     gpu_busy_fraction=gpu_busy)


class TestRunResult:
    def test_total_is_sum_of_components(self):
        run = make_run()
        assert run.total_ns == 350.0

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            make_run(alloc=-1.0)

    def test_share(self):
        run = make_run()
        assert run.share("memcpy") == pytest.approx(200.0 / 350.0)
        assert run.share("allocation") + run.share("memcpy") \
            + run.share("gpu_kernel") == pytest.approx(1.0)

    def test_breakdown_keys(self):
        assert set(make_run().breakdown()) == {"gpu_kernel", "memcpy",
                                               "allocation"}


class TestRunSet:
    def _runs(self):
        runs = RunSet(workload="w", mode=TransferMode.STANDARD, size="super")
        for seed, kernel in enumerate((50.0, 60.0, 70.0)):
            runs.add(make_run(kernel=kernel, seed=seed))
        return runs

    def test_mean_total(self):
        assert self._runs().mean_total_ns() == pytest.approx(360.0)

    def test_add_foreign_run_rejected(self):
        runs = self._runs()
        with pytest.raises(ValueError):
            runs.add(make_run(mode=TransferMode.UVM))
        with pytest.raises(ValueError):
            runs.add(make_run(workload="other"))

    def test_mean_breakdown(self):
        breakdown = self._runs().mean_breakdown()
        assert breakdown["gpu_kernel"] == pytest.approx(60.0)
        assert breakdown["memcpy"] == pytest.approx(200.0)

    def test_cv_of_identical_runs_is_zero(self):
        runs = RunSet(workload="w", mode=TransferMode.STANDARD, size="super")
        runs.add(make_run())
        runs.add(make_run(seed=1))
        assert runs.cv() == 0.0

    def test_empty_runset_raises(self):
        runs = RunSet(workload="w", mode=TransferMode.STANDARD, size="super")
        with pytest.raises(ValueError):
            runs.mean_breakdown()


class TestModeComparison:
    def _comparison(self):
        comparison = ModeComparison(workload="w", size="super")
        standard = RunSet(workload="w", mode=TransferMode.STANDARD,
                          size="super")
        standard.add(make_run())
        uvm = RunSet(workload="w", mode=TransferMode.UVM, size="super")
        uvm.add(make_run(mode=TransferMode.UVM, memcpy=100.0, kernel=110.0))
        comparison.add(standard)
        comparison.add(uvm)
        return comparison

    def test_normalized_total(self):
        comparison = self._comparison()
        assert comparison.normalized_total(TransferMode.STANDARD) == 1.0
        assert comparison.normalized_total(TransferMode.UVM) == \
            pytest.approx(310.0 / 350.0)

    def test_improvement_pct(self):
        comparison = self._comparison()
        assert comparison.improvement_pct(TransferMode.UVM) == \
            pytest.approx((1 - 310.0 / 350.0) * 100)

    def test_component_saving(self):
        comparison = self._comparison()
        assert comparison.component_saving_pct(TransferMode.UVM,
                                               "memcpy") == pytest.approx(50.0)

    def test_normalized_breakdown_sums_to_normalized_total(self):
        comparison = self._comparison()
        breakdown = comparison.normalized_breakdown(TransferMode.UVM)
        assert sum(breakdown.values()) == pytest.approx(
            comparison.normalized_total(TransferMode.UVM))

    def test_missing_baseline_raises(self):
        comparison = ModeComparison(workload="w", size="super")
        with pytest.raises(ValueError):
            comparison.baseline()
