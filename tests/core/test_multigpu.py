"""Multi-GPU extension tests."""

import pytest

from repro.core.configs import TransferMode
from repro.core.multigpu import (run_multi_gpu, scaling_study,
                                 shard_descriptor, shard_program)
from repro.workloads.registry import get_workload
from repro.workloads.sizes import SizeClass

from ..sim.test_kernel import make_descriptor


@pytest.fixture(scope="module")
def program():
    # Super-sized: small shards are dominated by fixed per-device costs
    # and would not scale (which is itself a finding the scaling study
    # exposes).
    return get_workload("vector_seq").program(SizeClass.SUPER)


class TestSharding:
    def test_shard_descriptor_divides_blocks(self):
        descriptor = make_descriptor(blocks=128)
        shard = shard_descriptor(descriptor, 4)
        assert shard.blocks == 32
        assert shard.load_bytes == descriptor.load_bytes // 4

    def test_shard_descriptor_scales_footprint_and_writes(self):
        descriptor = make_descriptor(blocks=128, write_bytes=4096,
                                     data_footprint_bytes=1 << 20)
        shard = shard_descriptor(descriptor, 4)
        assert shard.write_bytes == 1024
        assert shard.data_footprint_bytes == (1 << 20) // 4

    def test_single_gpu_shard_is_identity(self):
        descriptor = make_descriptor()
        assert shard_descriptor(descriptor, 1) == descriptor

    def test_shard_program_splits_buffers(self, program):
        shard = shard_program(program, 4, 0)
        assert shard.footprint_bytes == pytest.approx(
            program.footprint_bytes / 4, rel=0.01)

    def test_shard_validation(self, program):
        with pytest.raises(ValueError):
            shard_program(program, 2, 2)
        with pytest.raises(ValueError):
            shard_descriptor(make_descriptor(), 0)


class TestExecution:
    @pytest.mark.parametrize("mode", [TransferMode.STANDARD,
                                      TransferMode.UVM_PREFETCH_ASYNC])
    def test_runs_on_two_gpus(self, program, mode):
        result = run_multi_gpu(program, mode, gpus=2)
        assert result.gpus == 2
        assert result.wall_ns > 0
        assert len(result.per_gpu_totals_ns) == 2

    def test_two_gpus_faster_than_one(self, program):
        one = run_multi_gpu(program, TransferMode.STANDARD, gpus=1)
        two = run_multi_gpu(program, TransferMode.STANDARD, gpus=2)
        assert two.wall_ns < one.wall_ns

    def test_scaling_is_sublinear(self, program):
        """The shared host allocator limits scaling - the Sec. 6
        observation extended to multiple devices."""
        study = scaling_study(program, TransferMode.STANDARD,
                              gpu_counts=(1, 4))
        assert 1.0 < study[4]["speedup"] < 4.0
        assert study[4]["efficiency"] < 1.0

    def test_alloc_bound_config_scales_worse(self, program):
        """uvm configs are more allocation-bound, so they gain less
        from extra devices than standard does."""
        standard = scaling_study(program, TransferMode.STANDARD,
                                 gpu_counts=(1, 4))
        managed = scaling_study(program, TransferMode.UVM_PREFETCH,
                                gpu_counts=(1, 4))
        assert managed[4]["speedup"] < standard[4]["speedup"]

    def test_invalid_gpu_count(self, program):
        with pytest.raises(ValueError):
            run_multi_gpu(program, TransferMode.STANDARD, gpus=0)
