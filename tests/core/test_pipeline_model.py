"""Inter-job pipeline (Sec. 6 / Fig. 14) tests."""

import pytest

from repro.core.configs import ALL_MODES, TransferMode
from repro.core.pipeline_model import interjob_speedup, run_job_batch
from repro.workloads.registry import get_workload
from repro.workloads.sizes import SizeClass


@pytest.fixture(scope="module")
def program():
    return get_workload("vector_seq").program(SizeClass.LARGE)


class TestJobBatch:
    def test_single_job_runs(self, program):
        result = run_job_batch(program, TransferMode.STANDARD, jobs=1)
        assert result.wall_ns > 0
        assert result.jobs == 1

    def test_invalid_job_count(self, program):
        with pytest.raises(ValueError):
            run_job_batch(program, TransferMode.STANDARD, jobs=0)

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_all_modes_supported(self, program, mode):
        result = run_job_batch(program, mode, jobs=2)
        assert result.wall_ns > 0

    def test_sequential_scales_linearly(self, program):
        one = run_job_batch(program, TransferMode.UVM_PREFETCH, jobs=1)
        three = run_job_batch(program, TransferMode.UVM_PREFETCH, jobs=3)
        assert three.wall_ns == pytest.approx(3 * one.wall_ns, rel=0.1)

    def test_overlap_beats_sequential(self, program):
        sequential = run_job_batch(program, TransferMode.UVM_PREFETCH_ASYNC,
                                   jobs=6, overlapped=False)
        pipelined = run_job_batch(program, TransferMode.UVM_PREFETCH_ASYNC,
                                  jobs=6, overlapped=True)
        assert pipelined.wall_ns < sequential.wall_ns

    def test_overlap_preserves_total_work(self, program):
        sequential = run_job_batch(program, TransferMode.UVM_PREFETCH,
                                   jobs=4, overlapped=False, seed=3)
        pipelined = run_job_batch(program, TransferMode.UVM_PREFETCH,
                                  jobs=4, overlapped=True, seed=3)
        for category in ("allocation", "gpu_kernel"):
            assert pipelined.breakdown[category] == pytest.approx(
                sequential.breakdown[category], rel=0.05)


class TestSpeedupHeadline:
    def test_improvement_in_paper_band(self, program):
        """Sec. 6.2 projects a >30 % gain in the ideal case; the
        simulated pipeline lands well into double digits."""
        result = interjob_speedup(program, TransferMode.UVM_PREFETCH_ASYNC,
                                  jobs=8)
        assert result["improvement_pct"] > 15.0
        assert result["speedup"] > 1.15
        assert result["pipelined_wall_ns"] < result["sequential_wall_ns"]
