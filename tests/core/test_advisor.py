"""Advisor (takeaways-as-code) tests."""

from repro.core.advisor import (check_carveout, check_input_size,
                                check_launch_geometry, recommend_mode)
from repro.core.configs import TransferMode
from repro.workloads.registry import get_workload
from repro.workloads.sizes import SizeClass

SUPER = SizeClass.SUPER


class TestRecommendMode:
    def test_memory_bound_regular_gets_prefetch_async(self):
        program = get_workload("vector_seq").program(SUPER)
        recommendation = recommend_mode(program)
        assert recommendation.mode is TransferMode.UVM_PREFETCH_ASYNC

    def test_shared_working_set_avoids_prefetch(self):
        program = get_workload("nw").program(SUPER)
        recommendation = recommend_mode(program)
        assert recommendation.mode is TransferMode.UVM
        assert any("nw" in reason or "share" in reason
                   for reason in recommendation.reasons)

    def test_irregular_workload_gets_async(self):
        program = get_workload("lud").program(SUPER)
        recommendation = recommend_mode(program)
        assert recommendation.mode in (TransferMode.ASYNC,
                                       TransferMode.UVM_PREFETCH_ASYNC)

    def test_tuned_gemm_avoids_async(self):
        program = get_workload("gemm").program(SUPER)
        recommendation = recommend_mode(program)
        assert not recommendation.mode.uses_async

    def test_small_footprint_stays_standard(self):
        program = get_workload("vector_seq").program(SizeClass.TINY)
        recommendation = recommend_mode(program)
        assert recommendation.mode is TransferMode.STANDARD

    def test_render_mentions_mode(self):
        program = get_workload("vector_seq").program(SUPER)
        text = recommend_mode(program).render()
        assert "uvm_prefetch_async" in text


class TestChecks:
    def test_input_size_warns_small(self):
        notes = check_input_size(SizeClass.TINY)
        assert any("overhead" in note for note in notes)

    def test_input_size_warns_mega(self):
        notes = check_input_size(SizeClass.MEGA)
        assert any("chip" in note for note in notes)

    def test_input_size_blesses_large(self):
        notes = check_input_size(SizeClass.LARGE)
        assert any("stable" in note for note in notes)

    def test_geometry_warns_few_threads(self):
        kernel = get_workload("vector_seq").program(SUPER).descriptors()[0]
        import dataclasses
        starved = dataclasses.replace(kernel, threads_per_block=32)
        notes = check_launch_geometry(starved)
        assert any("underutilizes" in note for note in notes)

    def test_carveout_warnings(self):
        kernel = get_workload("vector_seq").program(SUPER).descriptors()[0]
        too_small = check_carveout(kernel, 2 * 1024,
                                   TransferMode.UVM_PREFETCH_ASYNC)
        assert any("double buffer" in note for note in too_small)
        too_large = check_carveout(kernel, 160 * 1024, TransferMode.UVM)
        assert any("L1" in note for note in too_large)
        balanced = check_carveout(kernel, 32 * 1024, TransferMode.STANDARD)
        assert any("balanced" in note for note in balanced)
