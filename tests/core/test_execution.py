"""Mode-semantics tests: what each configuration actually does."""

import numpy as np
import pytest

from repro.core.configs import ALL_MODES, TransferMode
from repro.core.execution import execute_program
from repro.sim.program import (BufferDirection, BufferSpec, KernelPhase,
                               Program)

from ..sim.test_kernel import make_descriptor


def small_program(shares_data=False, host_sync=0, iterations=1):
    kernel1 = make_descriptor(shares_data_with_next=shares_data,
                              data_footprint_bytes=64 << 20)
    kernel2 = make_descriptor(name="k2", data_footprint_bytes=64 << 20)
    buffers = (
        BufferSpec("in", 64 << 20, BufferDirection.IN),
        BufferSpec("out", 16 << 20, BufferDirection.OUT,
                   host_read_fraction=0.25),
        BufferSpec("tmp", 8 << 20, BufferDirection.SCRATCH),
    )
    return Program(name="small", buffers=buffers,
                   phases=(KernelPhase(kernel1, count=iterations,
                                       host_sync_bytes=host_sync),
                           KernelPhase(kernel2)))


class TestBasics:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_every_mode_executes(self, mode):
        result = execute_program(small_program(), mode, seed=1,
                                 size_label="test")
        assert result.total_ns > 0
        assert result.alloc_ns > 0
        assert result.kernel_ns > 0
        assert result.mode is mode

    def test_deterministic_per_seed(self):
        first = execute_program(small_program(), TransferMode.UVM, seed=9)
        second = execute_program(small_program(), TransferMode.UVM, seed=9)
        assert first.total_ns == second.total_ns

    def test_seeds_vary_results(self):
        totals = {execute_program(small_program(), TransferMode.STANDARD,
                                  seed=seed).total_ns for seed in range(5)}
        assert len(totals) == 5

    def test_wall_time_close_to_sum_for_explicit(self):
        result = execute_program(small_program(), TransferMode.STANDARD,
                                 seed=0)
        # Explicit path is fully sequential: wall ~= sum of components
        # (up to measurement-noise re-timing of recorded durations).
        assert result.wall_ns == pytest.approx(result.total_ns, rel=0.05)

    def test_uvm_overlaps_migration_with_kernel(self):
        result = execute_program(small_program(), TransferMode.UVM, seed=0)
        # Migration is concurrent with the kernel, so wall < sum.
        assert result.wall_ns < result.total_ns


class TestModeSemantics:
    def test_uvm_skips_explicit_copies(self):
        standard = execute_program(small_program(), TransferMode.STANDARD,
                                   seed=2)
        uvm = execute_program(small_program(), TransferMode.UVM, seed=2)
        # UVM moves only touched data + small writeback: less memcpy.
        assert uvm.memcpy_ns < standard.memcpy_ns

    def test_prefetch_faster_transfer_than_demand(self):
        uvm = execute_program(small_program(), TransferMode.UVM, seed=2)
        prefetch = execute_program(small_program(),
                                   TransferMode.UVM_PREFETCH, seed=2)
        assert prefetch.memcpy_ns < uvm.memcpy_ns

    def test_cold_uvm_kernels_slower(self):
        standard = execute_program(small_program(), TransferMode.STANDARD,
                                   seed=2)
        uvm = execute_program(small_program(), TransferMode.UVM, seed=2)
        assert uvm.kernel_ns > standard.kernel_ns

    def test_host_sync_only_charged_to_explicit_modes(self):
        plain = small_program(host_sync=0)
        syncing = small_program(host_sync=128 << 20)
        standard_delta = (
            execute_program(syncing, TransferMode.STANDARD, seed=4).memcpy_ns
            - execute_program(plain, TransferMode.STANDARD, seed=4).memcpy_ns)
        uvm_delta = (
            execute_program(syncing, TransferMode.UVM, seed=4).memcpy_ns
            - execute_program(plain, TransferMode.UVM, seed=4).memcpy_ns)
        assert standard_delta > 0
        assert uvm_delta == pytest.approx(0.0)

    def test_shared_data_penalizes_prefetch_only(self):
        plain = small_program(shares_data=False)
        sharing = small_program(shares_data=True)
        prefetch_delta = (
            execute_program(sharing, TransferMode.UVM_PREFETCH,
                            seed=5).total_ns
            - execute_program(plain, TransferMode.UVM_PREFETCH,
                              seed=5).total_ns)
        uvm_delta = (
            execute_program(sharing, TransferMode.UVM, seed=5).total_ns
            - execute_program(plain, TransferMode.UVM, seed=5).total_ns)
        # The nw effect: sharing hurts prefetch, not plain uvm.
        assert prefetch_delta > 0
        assert abs(uvm_delta) < prefetch_delta

    def test_repeated_phases_fault_once_under_uvm(self):
        once = small_program(iterations=1)
        many = small_program(iterations=10)
        once_result = execute_program(once, TransferMode.UVM, seed=6)
        many_result = execute_program(many, TransferMode.UVM, seed=6)
        # 10 iterations over the same data: memcpy must NOT grow 10x.
        assert many_result.memcpy_ns < 1.5 * once_result.memcpy_ns

    def test_gpu_busy_fraction_bounded(self):
        for mode in ALL_MODES:
            result = execute_program(small_program(), mode, seed=1)
            assert 0.0 <= result.gpu_busy_fraction <= 1.0


class TestRngInjection:
    def test_explicit_rng_used(self):
        rng = np.random.default_rng(777)
        first = execute_program(small_program(), TransferMode.STANDARD,
                                rng=rng)
        rng = np.random.default_rng(777)
        second = execute_program(small_program(), TransferMode.STANDARD,
                                 rng=rng)
        assert first.total_ns == second.total_ns


class TestValidateHook:
    def test_validate_accepts_clean_program(self):
        result = execute_program(small_program(), TransferMode.STANDARD,
                                 seed=1, validate=True)
        assert result.total_ns > 0

    def test_validate_rejects_smem_overflow_before_simulating(self):
        from repro.analysis import LintError
        bad = make_descriptor(smem_static_bytes=200 * 1024)
        program = Program(
            name="bad", buffers=(
                BufferSpec("in", bad.load_bytes, BufferDirection.IN),
            ),
            phases=(KernelPhase(bad),))
        with pytest.raises(LintError, match="K101") as excinfo:
            execute_program(program, TransferMode.STANDARD, validate=True)
        assert excinfo.value.report.has_errors

    def test_validate_rejects_explicit_hbm_overflow(self):
        from repro.analysis import LintError
        huge = make_descriptor(data_footprint_bytes=45 << 30)
        program = Program(
            name="huge", buffers=(
                BufferSpec("in", 45 << 30, BufferDirection.IN),
            ),
            phases=(KernelPhase(huge),))
        with pytest.raises(LintError, match="P201"):
            execute_program(program, TransferMode.STANDARD, validate=True)
        # The same footprint is legal (oversubscription) under UVM.
        result = execute_program(program, TransferMode.UVM, validate=True)
        assert result.total_ns > 0

    def test_validate_defaults_off(self):
        """Oversubscription studies run 45+ GiB explicit programs on
        purpose; execute_program must not lint unless asked."""
        huge = make_descriptor(data_footprint_bytes=45 << 30)
        program = Program(
            name="huge", buffers=(
                BufferSpec("in", 45 << 30, BufferDirection.IN),
            ),
            phases=(KernelPhase(huge),))
        result = execute_program(program, TransferMode.STANDARD)
        assert result.total_ns > 0
