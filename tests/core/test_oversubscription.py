"""UVM oversubscription tests (footprint > GPU memory)."""

import pytest

from repro.core.configs import TransferMode
from repro.core.execution import (UVM_USABLE_HBM_FRACTION, execute_program,
                                  managed_capacity_ratio)
from repro.sim.hardware import GIB
from repro.sim.program import (BufferDirection, BufferSpec, KernelPhase,
                               Program)

from ..sim.test_kernel import make_descriptor


def big_program(footprint_gib: float, iterations: int = 4) -> Program:
    size = int(footprint_gib * GIB)
    descriptor = make_descriptor(blocks=4096, tiles_per_block=64,
                                 data_footprint_bytes=size)
    return Program(
        name="big",
        buffers=(BufferSpec("data", size, BufferDirection.IN),),
        phases=(KernelPhase(descriptor, count=iterations),),
    )


class TestCapacityRatio:
    def test_fits_when_under_capacity(self):
        result = execute_program(big_program(8), TransferMode.UVM, seed=0)
        assert result.total_ns > 0

    def test_ratio_math(self, system, calib):
        import numpy as np
        from repro.sim.runtime import CudaRuntime
        program = big_program(80)  # 2x the 40 GB HBM
        rt = CudaRuntime(system, calib, np.random.default_rng(0))
        ratio = managed_capacity_ratio(program, rt)
        assert ratio == pytest.approx(40 * UVM_USABLE_HBM_FRACTION / 80,
                                      rel=0.01)

    def test_in_capacity_program_has_ratio_one(self, system, calib):
        import numpy as np
        from repro.sim.runtime import CudaRuntime
        rt = CudaRuntime(system, calib, np.random.default_rng(0))
        assert managed_capacity_ratio(big_program(8), rt) == 1.0


class TestThrashing:
    def test_oversubscribed_uvm_refaults_every_pass(self):
        """Beyond capacity, each iteration re-migrates the evicted
        excess: memcpy no longer amortizes across passes."""
        fits = execute_program(big_program(8, iterations=6),
                               TransferMode.UVM, seed=1)
        oversub = execute_program(big_program(60, iterations=6),
                                  TransferMode.UVM, seed=1)
        # In-capacity: one cold pass; oversubscribed: excess migrates
        # every pass, so memcpy grows super-linearly vs the 7.5x size.
        assert oversub.memcpy_ns > 7.5 * fits.memcpy_ns

    def test_oversubscription_slows_kernels(self):
        per_gib_fit = execute_program(big_program(10, iterations=6),
                                      TransferMode.UVM, seed=2)
        per_gib_over = execute_program(big_program(60, iterations=6),
                                       TransferMode.UVM, seed=2)
        # Kernel ns per GiB of footprint grows under thrash.
        assert per_gib_over.kernel_ns / 60 > per_gib_fit.kernel_ns / 10

    def test_prefetch_configs_also_capped(self):
        oversub = execute_program(big_program(60, iterations=6),
                                  TransferMode.UVM_PREFETCH, seed=3)
        fits = execute_program(big_program(8, iterations=6),
                               TransferMode.UVM_PREFETCH, seed=3)
        assert oversub.kernel_ns / 60 > fits.kernel_ns / 8

    def test_explicit_configs_unaffected_by_cap(self):
        """cudaMalloc'd programs never demand-migrate, so the capacity
        model leaves them alone (the simulator does not model explicit
        OOM failures)."""
        result = execute_program(big_program(60), TransferMode.STANDARD,
                                 seed=4)
        assert result.total_ns > 0
