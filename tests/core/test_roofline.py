"""Roofline classification tests."""

import pytest

from repro.core.roofline import (Bottleneck, render_roofline,
                                 roofline_point, suite_roofline)
from repro.workloads.registry import get_workload
from repro.workloads.sizes import SizeClass

SUPER = SizeClass.SUPER


@pytest.fixture(scope="module")
def points():
    return suite_roofline(SUPER, names=("vector_seq", "gemm", "lud",
                                        "yolov3", "knn"))


class TestClassification:
    """The classification must back the paper's per-workload stories."""

    def test_vector_seq_is_host_transfer_bound(self, points):
        assert points["vector_seq"].bottleneck is Bottleneck.HOST_TRANSFER

    def test_gemm_is_compute_bound(self, points):
        assert points["gemm"].bottleneck is Bottleneck.COMPUTE

    def test_lud_is_staging_bound(self, points):
        """Why lud is the Async Memcpy poster child (Takeaway 2)."""
        assert points["lud"].bottleneck is Bottleneck.STAGING

    def test_yolov3_is_allocation_bound(self, points):
        """Why its kernels are a small share and the Sec. 6 model is
        what would actually help it."""
        assert points["yolov3"].bottleneck is Bottleneck.ALLOCATION

    def test_intensity_ordering(self, points):
        """gemm's arithmetic intensity dwarfs the streaming kernels'."""
        assert points["gemm"].arithmetic_intensity > \
            points["knn"].arithmetic_intensity

    def test_hints_mention_the_right_feature(self, points):
        assert "UVM prefetch" in points["vector_seq"].recommendation_hint()
        assert "Async Memcpy" in points["lud"].recommendation_hint()
        assert "inter-job" in points["yolov3"].recommendation_hint()


class TestMechanics:
    def test_point_components_positive(self, points):
        for point in points.values():
            assert point.host_transfer_ns > 0
            assert point.staging_ns > 0
            assert point.compute_ns >= 0
            assert point.allocation_ns > 0
            assert point.total_ns > 0

    def test_single_program_entry(self):
        point = roofline_point(get_workload("saxpy").program(SUPER))
        assert point.workload == "saxpy"
        assert point.arithmetic_intensity > 0

    def test_render(self, points):
        text = render_roofline(points)
        assert "bottleneck" in text
        assert "gemm" in text

    def test_suite_roofline_all(self):
        points = suite_roofline(SizeClass.LARGE)
        assert len(points) == 21
