"""Experiment runner tests."""

import pytest

from repro.core.configs import TransferMode
from repro.core.experiment import (Experiment, compare_workload, run_seed,
                                   run_workload)
from repro.workloads.sizes import SizeClass


class TestSeeds:
    def test_seed_stable_across_calls(self):
        a = run_seed(1, "w", "super", TransferMode.UVM, 3)
        b = run_seed(1, "w", "super", TransferMode.UVM, 3)
        assert a.entropy == b.entropy

    def test_seed_distinguishes_every_axis(self):
        base = run_seed(1, "w", "super", TransferMode.UVM, 3).entropy
        assert run_seed(2, "w", "super", TransferMode.UVM, 3).entropy != base
        assert run_seed(1, "x", "super", TransferMode.UVM, 3).entropy != base
        assert run_seed(1, "w", "large", TransferMode.UVM, 3).entropy != base
        assert run_seed(1, "w", "super", TransferMode.ASYNC,
                        3).entropy != base
        assert run_seed(1, "w", "super", TransferMode.UVM, 4).entropy != base


class TestExperiment:
    def test_validation(self):
        with pytest.raises(ValueError):
            Experiment(workload="vector_seq", iterations=0)
        with pytest.raises(ValueError):
            Experiment(workload="vector_seq", modes=())

    def test_run_mode_produces_runset(self):
        experiment = Experiment(workload="vector_seq",
                                size=SizeClass.SMALL, iterations=4)
        runs = experiment.run_mode(TransferMode.STANDARD)
        assert len(runs) == 4
        assert runs.workload == "vector_seq"
        assert all(run.total_ns > 0 for run in runs.runs)

    def test_runs_reproducible(self):
        def totals():
            experiment = Experiment(workload="saxpy", size=SizeClass.SMALL,
                                    iterations=3, base_seed=77)
            return experiment.run_mode(TransferMode.UVM).totals()

        assert totals() == totals()

    def test_run_collects_all_modes(self):
        experiment = Experiment(workload="vector_seq",
                                size=SizeClass.SMALL, iterations=2)
        comparison = experiment.run()
        assert set(comparison.by_mode) == set(TransferMode)

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            Experiment(workload="nonexistent").run_mode(
                TransferMode.STANDARD)


class TestConveniences:
    def test_run_workload_accepts_labels(self):
        runs = run_workload("vector_seq", size="small",
                            mode=TransferMode.ASYNC, iterations=2)
        assert runs.mode is TransferMode.ASYNC
        assert runs.size == "small"

    def test_compare_workload(self):
        comparison = compare_workload("saxpy", "small", iterations=2)
        assert comparison.normalized_total(TransferMode.STANDARD) == 1.0
