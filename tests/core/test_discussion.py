"""Section 6.1 share-summary tests."""

import pytest

from repro.core.configs import TransferMode
from repro.core.discussion import ShareSummary, section6_shares


@pytest.fixture(scope="module")
def summary():
    # A few representative apps, 1 iteration: shares are stable.
    return section6_shares(workloads=("vector_seq", "srad", "knn"),
                           iterations=1)


class TestShareSummary:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            ShareSummary(mode=TransferMode.STANDARD, memcpy_share=1.2,
                         allocation_share=0.1, kernel_share=0.1,
                         gpu_busy=0.1)


class TestSection6:
    def test_shares_sum_to_one(self, summary):
        for shares in (summary.standard, summary.optimized):
            total = (shares.memcpy_share + shares.allocation_share
                     + shares.kernel_share)
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_transfer_share_drops(self, summary):
        """Paper: 55.86 % -> 24.55 %."""
        assert summary.transfer_share_drop > 0

    def test_allocation_share_rises(self, summary):
        """Paper: 18.99 % -> 37.66 %."""
        assert summary.allocation_share_rise > 0

    def test_render_mentions_both_modes(self, summary):
        text = summary.render()
        assert "standard" in text
        assert "uvm_prefetch_async" in text
