"""Public-API integrity: everything advertised is importable and real."""

import importlib

import pytest

PACKAGES = ["repro", "repro.sim", "repro.core", "repro.harness",
            "repro.analysis", "repro.fabric",
            "repro.workloads.darknet", "repro.workloads.rodinia",
            "repro.workloads.micro", "repro.workloads.uvmbench"]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert exported, f"{package} must declare __all__"
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_exports_are_documented(package):
    """Every exported class/function carries a docstring."""
    module = importlib.import_module(package)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if callable(obj) or isinstance(obj, type):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"{package}: undocumented {undocumented}"


def test_readme_quickstart_snippet_runs():
    from repro import SizeClass, TransferMode, compare_workload
    comparison = compare_workload("vector_seq", SizeClass.SMALL,
                                  iterations=2)
    for mode in TransferMode:
        assert comparison.normalized_total(mode) > 0


def test_version_string():
    import repro
    assert repro.__version__ == "1.0.0"
