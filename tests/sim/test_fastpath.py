"""Fast-path engine tests: deadlines, chunk trains, coalescing, memo.

The heavier reference-vs-fast equivalence battery lives in
``tests/harness/test_differential.py``; this module unit-tests the
engine mechanics the fast path is built from.
"""

import pytest

from repro.sim.calibration import default_calibration
from repro.sim.engine import (Deadline, Environment, Resource,
                              SimulationError, Timeout)
from repro.sim.fastpath import FastEnvironment
from repro.sim.hardware import default_system
from repro.sim.kernel import AccessPattern, KernelDescriptor
from repro.sim.phasecache import (PhaseMemo, clear_phase_memos,
                                  phase_memo_for)
from repro.sim.timing import ConfigFlags, simulate_kernel

ENGINES = (Environment, FastEnvironment)


# ----------------------------------------------------------------------
# Timeout / Deadline trigger-guard regression (the historical bug)
# ----------------------------------------------------------------------
class TestTriggerGuard:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_event_types(self, engine):
        env = engine()
        assert isinstance(env.timeout(1.0), Timeout)
        assert isinstance(env.timeout_until(1.0), Deadline)

    def test_timeout_succeed_after_creation_raises(self):
        """A Timeout is born triggered; ``succeed`` must raise instead
        of double-scheduling it (the historical guard-bypass bug)."""
        env = Environment()
        timeout = env.timeout(5.0)
        with pytest.raises(SimulationError):
            timeout.succeed()

    def test_timeout_not_double_scheduled(self):
        env = Environment()
        timeout = env.timeout(5.0)
        with pytest.raises(SimulationError):
            timeout.succeed()
        fired = []
        timeout.callbacks.append(lambda e: fired.append(env.now))
        env.run()
        assert fired == [5.0]  # exactly once, at the original delay

    def test_deadline_succeed_after_creation_raises(self):
        env = Environment()
        deadline = env.timeout_until(5.0)
        with pytest.raises(SimulationError):
            deadline.succeed()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_deadline_fires_at_absolute_time(self, engine):
        env = engine()
        first = env.timeout(2.0)
        seen = []
        env.timeout_until(7.25).callbacks.append(
            lambda e: seen.append(env.now))
        env.run()
        assert first.processed
        assert seen == [7.25]

    def test_deadline_in_past_rejected(self):
        env = Environment()
        env.timeout(10.0)
        env.run()
        with pytest.raises(SimulationError):
            env.timeout_until(5.0)


# ----------------------------------------------------------------------
# Chunk trains: boundary arithmetic and contention semantics
# ----------------------------------------------------------------------
def run_stream(engine, count, total, start_delay=0.0):
    env = engine()
    resource = Resource(env, capacity=1, name="r")
    out = {}

    def proc():
        if start_delay:
            yield env.timeout(start_delay)
        out["span"] = yield from resource.stream(count, total)

    env.run_process(proc(), name="train")
    return env, resource, out["span"]


class TestStreamTrains:
    # Awkward floats whose iterated-addition sum differs from the
    # analytic product — the reason boundaries are absolute deadlines.
    @pytest.mark.parametrize("total", [103.0, 1234.567891, 0.1, 3.0e7 / 7])
    @pytest.mark.parametrize("count", [1, 2, 3, 17, 128])
    @pytest.mark.parametrize("engine", ENGINES)
    def test_train_end_bit_identical_to_monolithic(self, engine, count,
                                                   total):
        _, _, (start1, end1) = run_stream(engine, 1, total,
                                          start_delay=13.25)
        _, _, (startn, endn) = run_stream(engine, count, total,
                                          start_delay=13.25)
        assert startn == start1
        assert endn == end1  # bitwise: absolute boundaries, 1.0 factor

    @pytest.mark.parametrize("engine", ENGINES)
    def test_reference_and_fast_agree(self, engine):
        ref = run_stream(Environment, 37, 987.654321)
        got = run_stream(engine, 37, 987.654321)
        assert got[2] == ref[2]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_zero_chunks_is_noop(self, engine):
        env, resource, (start, end) = run_stream(engine, 0, 55.0)
        assert (start, end) == (0.0, 0.0)
        assert env.now == 0.0
        assert resource.in_use == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_negative_rejected(self, engine):
        env = engine()
        resource = Resource(env, capacity=1)
        with pytest.raises(SimulationError):
            env.run_process(resource.stream(-1, 5.0))
        env = engine()
        resource = Resource(env, capacity=1)
        with pytest.raises(SimulationError):
            env.run_process(resource.stream(2, -5.0))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_contended_trains_interleave_per_chunk(self, engine):
        """Two trains on a capacity-1 resource share it chunk by chunk;
        both engines must produce the identical (non-coalesced) times."""
        def run(engine):
            env = engine()
            resource = Resource(env, capacity=1, name="link")
            spans = {}

            def train(tag, count, total, delay):
                if delay:
                    yield env.timeout(delay)
                spans[tag] = yield from resource.stream(count, total)

            env.process(train("a", 4, 100.0, 0.0), name="a")
            env.process(train("b", 4, 100.0, 10.0), name="b")
            env.run()
            return spans, env.now

        ref_spans, ref_now = run(Environment)
        spans, now = run(engine)
        assert spans == ref_spans
        assert now == ref_now
        # b arrives at t=10 but only gets its first grant at a's first
        # chunk boundary (t=25); from there its absolute boundaries run
        # 50, 75, 100, 125 while a's remaining chunks catch up to their
        # own (already-passed) deadlines in zero time.
        assert ref_spans["b"] == (25.0, 125.0)
        assert ref_now == 125.0

    def test_contended_first_grant_waits(self):
        """A second requester arriving mid-train queues until the
        in-flight chunk releases, not until the whole train ends."""
        env = Environment()
        resource = Resource(env, capacity=1, name="link")
        grants = []

        def train():
            yield from resource.stream(10, 100.0)

        def interloper():
            yield env.timeout(5.0)
            yield resource.request()
            grants.append(env.now)
            resource.release()

        env.process(train(), name="train")
        env.process(interloper(), name="interloper")
        env.run()
        # chunk boundaries are at 10, 20, ... the interloper (t=5)
        # gets the resource at the first boundary, not at 100.
        assert grants == [10.0]


# ----------------------------------------------------------------------
# Coalescing certification
# ----------------------------------------------------------------------
class TestCoalesce:
    def test_quiescent_train_coalesces(self):
        env = FastEnvironment()
        resource = Resource(env, capacity=2, name="link")

        def proc():
            span = yield from resource.stream(100, 500.0)
            return span

        start, end = env.run_process(proc(), name="p")
        assert (start, end) == (0.0, 500.0)
        assert resource.busy_time() == pytest.approx(500.0)

    def test_heap_event_inside_window_blocks_coalescing(self):
        """An event scheduled inside the train window must force the
        per-chunk path (it could spawn a competing requester)."""
        env = FastEnvironment()
        resource = Resource(env, capacity=1, name="link")
        assert env.timeout(50.0) is not None

        def proc():
            return (yield from resource.stream(10, 100.0))

        start, end = env.run_process(proc(), name="p")
        # Same result, computed event by event.
        assert (start, end) == (0.0, 100.0)

    def test_heap_event_beyond_window_allows_coalescing(self):
        env = FastEnvironment()
        resource = Resource(env, capacity=1, name="link")
        seen = []
        env.timeout(1000.0).callbacks.append(lambda e: seen.append(env.now))

        def proc():
            return (yield from resource.stream(10, 100.0))

        start, end = env.run_process(proc(), name="p")
        assert (start, end) == (0.0, 100.0)
        assert seen == [1000.0]

    def test_busy_resource_blocks_coalescing(self):
        env = FastEnvironment()
        resource = Resource(env, capacity=2, name="link")
        spans = {}

        def holder():
            yield resource.request()
            yield env.timeout(30.0)
            resource.release()

        def train():
            spans["t"] = yield from resource.stream(3, 60.0)

        env.process(holder(), name="holder")
        env.process(train(), name="train")
        env.run()
        assert spans["t"] == (0.0, 60.0)  # capacity 2: no queueing

    def test_run_until_clamps_like_reference(self):
        for engine in ENGINES:
            env = engine()
            env.timeout(10.0)
            env.timeout(100.0)
            assert env.run(until=50.0) == 50.0
            assert env.now == 50.0
            assert env.run() == 100.0

    def test_until_blocks_coalescing(self):
        """Under a run(until=...) clamp the train must not jump the
        clock past the horizon."""
        env = FastEnvironment()
        resource = Resource(env, capacity=1, name="link")

        def proc():
            yield from resource.stream(10, 100.0)

        env.process(proc(), name="p")
        assert env.run(until=35.0) == 35.0
        assert env.now == 35.0


# ----------------------------------------------------------------------
# Phase memo
# ----------------------------------------------------------------------
DESC = KernelDescriptor(
    name="memo_kernel", blocks=128, threads_per_block=256,
    tiles_per_block=4, tile_bytes=16384, compute_cycles_per_tile=2048.0,
    access_pattern=AccessPattern.SEQUENTIAL, write_bytes=1 << 20,
    data_footprint_bytes=1 << 24)


class TestPhaseMemo:
    def setup_method(self):
        clear_phase_memos()

    def teardown_method(self):
        clear_phase_memos()

    def test_hit_returns_identical_object(self):
        system, calib = default_system(), default_calibration()
        smem = system.gpu.default_shared_mem_bytes
        memo = PhaseMemo(system, calib)
        flags = ConfigFlags()
        first = memo.simulate(DESC, flags, system, calib,
                              smem_carveout_bytes=smem,
                              resident_fraction=0.0)
        second = memo.simulate(DESC, flags, system, calib,
                               smem_carveout_bytes=smem,
                               resident_fraction=0.0)
        assert second is first
        assert (memo.hits, memo.misses) == (1, 1)
        assert first == simulate_kernel(DESC, flags, system, calib,
                                        smem_carveout_bytes=smem,
                                        resident_fraction=0.0)

    def test_distinct_arguments_miss(self):
        system, calib = default_system(), default_calibration()
        smem = system.gpu.default_shared_mem_bytes
        memo = PhaseMemo(system, calib)
        memo.simulate(DESC, ConfigFlags(), system, calib,
                      smem_carveout_bytes=smem)
        memo.simulate(DESC, ConfigFlags(use_async=True), system, calib,
                      smem_carveout_bytes=smem)
        memo.simulate(DESC, ConfigFlags(), system, calib,
                      smem_carveout_bytes=smem, resident_fraction=0.5)
        assert memo.misses == 3
        assert memo.hits == 0

    def test_foreign_environment_bypasses(self):
        system, calib = default_system(), default_calibration()
        memo = PhaseMemo(system, calib)
        import dataclasses
        other = dataclasses.replace(
            system, gpu=dataclasses.replace(system.gpu, sm_count=1))
        smem = other.gpu.default_shared_mem_bytes
        result = memo.simulate(DESC, ConfigFlags(), other, calib,
                               smem_carveout_bytes=smem)
        assert memo.bypasses == 1
        assert len(memo) == 0
        assert result == simulate_kernel(DESC, ConfigFlags(), other, calib,
                                         smem_carveout_bytes=smem,
                                         resident_fraction=0.0)

    def test_registry_reuses_by_equality(self):
        a = phase_memo_for(default_system(), default_calibration())
        b = phase_memo_for(default_system(), default_calibration())
        assert a is b
        clear_phase_memos()
        c = phase_memo_for(default_system(), default_calibration())
        assert c is not a
