"""Program / buffer specification tests."""

import pytest

from repro.sim.program import (BufferDirection, BufferSpec, KernelPhase,
                               Program, simple_program)

from .test_kernel import make_descriptor


class TestBufferSpec:
    def test_directions(self):
        assert BufferDirection.IN.host_to_device
        assert not BufferDirection.IN.device_to_host
        assert BufferDirection.INOUT.host_to_device
        assert BufferDirection.INOUT.device_to_host
        assert not BufferDirection.SCRATCH.host_to_device
        assert not BufferDirection.SCRATCH.device_to_host

    @pytest.mark.parametrize("kwargs", [
        dict(size_bytes=0),
        dict(size_bytes=-5),
        dict(device_touched_fraction=0.0),
        dict(device_touched_fraction=1.5),
        dict(host_read_fraction=-0.1),
        dict(host_read_fraction=1.1),
    ])
    def test_validation(self, kwargs):
        base = dict(name="b", size_bytes=1024)
        base.update(kwargs)
        with pytest.raises(ValueError):
            BufferSpec(**base)


class TestKernelPhase:
    def test_count_validated(self):
        with pytest.raises(ValueError):
            KernelPhase(make_descriptor(), count=0)

    def test_host_sync_validated(self):
        with pytest.raises(ValueError):
            KernelPhase(make_descriptor(), host_sync_bytes=-1)


class TestProgram:
    def _program(self, buffers=None):
        buffers = buffers or (
            BufferSpec("in", 1000, BufferDirection.IN),
            BufferSpec("out", 500, BufferDirection.OUT,
                       host_read_fraction=0.5),
            BufferSpec("scratch", 200, BufferDirection.SCRATCH),
            BufferSpec("both", 300, BufferDirection.INOUT,
                       device_touched_fraction=0.5),
        )
        return Program(name="p", buffers=buffers,
                       phases=(KernelPhase(make_descriptor()),))

    def test_footprint(self):
        assert self._program().footprint_bytes == 2000

    def test_h2d_excludes_out_and_scratch(self):
        assert self._program().h2d_bytes == 1300

    def test_d2h_excludes_in_and_scratch(self):
        assert self._program().d2h_bytes == 800

    def test_managed_input_respects_touched_fraction(self):
        assert self._program().managed_input_bytes == 1000 + 150

    def test_managed_writeback_respects_host_reads(self):
        assert self._program().managed_writeback_bytes == 250 + 300

    def test_empty_buffers_rejected(self):
        with pytest.raises(ValueError):
            Program(name="p", buffers=(),
                    phases=(KernelPhase(make_descriptor()),))

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            Program(name="p",
                    buffers=(BufferSpec("a", 1, BufferDirection.IN),),
                    phases=())

    def test_duplicate_buffer_names_rejected(self):
        with pytest.raises(ValueError):
            Program(name="p",
                    buffers=(BufferSpec("a", 1, BufferDirection.IN),
                             BufferSpec("a", 2, BufferDirection.IN)),
                    phases=(KernelPhase(make_descriptor()),))

    def test_total_kernel_launches(self):
        program = Program(
            name="p",
            buffers=(BufferSpec("a", 1, BufferDirection.IN),),
            phases=(KernelPhase(make_descriptor(), count=3),
                    KernelPhase(make_descriptor(), count=2)))
        assert program.total_kernel_launches == 5


class TestSimpleProgram:
    def test_builds_two_buffers(self):
        program = simple_program("demo", make_descriptor(), in_bytes=1000,
                                 out_bytes=400)
        assert program.footprint_bytes == 1400
        assert program.h2d_bytes == 1000
        assert program.d2h_bytes == 400
        assert len(program.phases) == 1
