"""CUDA stream semantics tests."""

import numpy as np
import pytest

from repro.sim.pcie import TransferKind
from repro.sim.runtime import CudaRuntime
from repro.sim.streams import CudaStream, device_synchronize
from repro.sim.timing import ConfigFlags

from .test_kernel import make_descriptor


@pytest.fixture
def rt(system, calib):
    return CudaRuntime(system, calib, np.random.default_rng(0))


class TestStreamOrdering:
    def test_same_stream_serializes(self, rt):
        stream = CudaStream(rt, "s")
        order = []

        def tagged(tag, duration):
            yield rt.env.timeout(duration)
            order.append(tag)

        stream.enqueue(tagged("first", 100.0))
        stream.enqueue(tagged("second", 1.0))

        def main():
            yield from stream.synchronize()

        rt.env.run_process(main())
        # Despite "second" being shorter, stream order holds.
        assert order == ["first", "second"]

    def test_different_streams_overlap(self, rt):
        copy_stream = CudaStream(rt, "copy")
        compute_stream = CudaStream(rt, "compute")
        copy_stream.enqueue(
            rt._transfer("copy", TransferKind.H2D, 1 << 30))
        compute_stream.enqueue(
            rt.launch(make_descriptor(), ConfigFlags(),
                      resident_fraction=1.0))

        def main():
            yield from device_synchronize(rt, copy_stream, compute_stream)

        rt.env.run_process(main())
        copy_span = [e for e in rt.timeline.events
                     if e.category == "memcpy"][0]
        kernel_span = [e for e in rt.timeline.events
                       if e.category == "gpu_kernel"][0]
        # Both started at t=0: genuine overlap.
        assert copy_span.start_ns == 0.0
        assert kernel_span.start_ns == 0.0

    def test_cross_stream_dependency(self, rt):
        copy_stream = CudaStream(rt, "copy")
        compute_stream = CudaStream(rt, "compute")
        copy = copy_stream.enqueue(
            rt._transfer("copy", TransferKind.H2D, 1 << 30))
        compute_stream.enqueue(
            rt.launch(make_descriptor(), ConfigFlags(),
                      resident_fraction=1.0),
            after=copy)

        def main():
            yield from device_synchronize(rt, copy_stream, compute_stream)

        rt.env.run_process(main())
        copy_span = [e for e in rt.timeline.events
                     if e.category == "memcpy"][0]
        kernel_span = [e for e in rt.timeline.events
                       if e.category == "gpu_kernel"][0]
        # The kernel starts at the copy's *actual* completion; the
        # recorded copy duration carries measurement noise, so compare
        # with a tolerance.
        assert kernel_span.start_ns >= copy_span.end_ns * 0.9
        assert kernel_span.start_ns > 0.9 * copy_span.duration_ns

    def test_pending_flag(self, rt):
        stream = CudaStream(rt, "s")
        assert not stream.pending
        stream.enqueue(rt._transfer("copy", TransferKind.H2D, 1 << 20))
        assert stream.pending
        rt.env.run()
        assert not stream.pending

    def test_empty_stream_synchronize_is_noop(self, rt):
        stream = CudaStream(rt, "s")

        def main():
            yield from stream.synchronize()
            return "done"

        assert rt.env.run_process(main()) == "done"


class TestAfterEdges:
    """Cross-stream `after` dependencies must be correct in both
    enqueue orders: producer-first (the event is still in flight) and
    producer-already-drained (the event fired before the consumer was
    enqueued, so waiting must short-circuit)."""

    def _producer(self, rt, order):
        def fragment():
            yield rt.env.timeout(100.0)
            order.append("producer")
        return fragment()

    def _consumer(self, rt, order):
        def fragment():
            yield rt.env.timeout(1.0)
            order.append("consumer")
        return fragment()

    def test_after_edge_with_inflight_producer(self, rt):
        order = []
        s1, s2 = CudaStream(rt, "s1"), CudaStream(rt, "s2")
        produced = s1.enqueue(self._producer(rt, order))
        s2.enqueue(self._consumer(rt, order), after=produced)
        rt.env.run()
        assert order == ["producer", "consumer"]

    def test_after_edge_with_drained_producer(self, rt):
        order = []
        s1, s2 = CudaStream(rt, "s1"), CudaStream(rt, "s2")
        produced = s1.enqueue(self._producer(rt, order))
        rt.env.run()  # the producer completes before the enqueue
        assert produced.processed
        s2.enqueue(self._consumer(rt, order), after=produced)
        rt.env.run()
        assert order == ["producer", "consumer"]

    def test_processed_after_is_short_circuited(self, rt):
        s1, s2 = CudaStream(rt, "s1"), CudaStream(rt, "s2")
        produced = s1.enqueue(self._producer(rt, []))
        rt.env.run()
        s2.enqueue(self._consumer(rt, []), after=produced)
        # The ledger shows no dangling dependency on the dead event.
        assert s2.ops[-1].after == ()

    def test_inflight_after_is_recorded(self, rt):
        s1, s2 = CudaStream(rt, "s1"), CudaStream(rt, "s2")
        produced = s1.enqueue(self._producer(rt, []))
        s2.enqueue(self._consumer(rt, []), after=produced)
        assert s2.ops[-1].after == (produced,)
        rt.env.run()

    def test_drained_tail_is_short_circuited(self, rt):
        stream = CudaStream(rt, "s")
        stream.enqueue(self._producer(rt, []))
        rt.env.run()
        order = []
        stream.enqueue(self._consumer(rt, order))
        rt.env.run()
        assert order == ["consumer"]


class TestLedger:
    def test_records_mirror_to_runtime(self, rt):
        s1, s2 = CudaStream(rt, "s1"), CudaStream(rt, "s2")
        s1.enqueue(rt._transfer("c", TransferKind.H2D, 1 << 20),
                   label="H2D", kind="copy", writes=("A",))
        s2.enqueue(rt.launch(make_descriptor(), ConfigFlags(),
                             resident_fraction=1.0),
                   label="kernel", kind="kernel", reads=("A",))
        rt.env.run()
        assert len(rt.stream_ops) == 2
        assert [r.stream for r in rt.stream_ops] == ["s1", "s2"]
        assert rt.stream_ops[0].writes == ("A",)
        assert rt.stream_ops[1].reads == ("A",)

    def test_sync_record_pendingness(self, rt):
        stream = CudaStream(rt, "s")
        stream.enqueue(rt._transfer("c", TransferKind.H2D, 1 << 20))

        def main():
            yield from stream.synchronize()  # waits on real work
            yield from stream.synchronize()  # drained: waits on nothing

        rt.env.run_process(main())
        syncs = [r for r in stream.ops if r.kind == "sync"]
        assert [s.pending for s in syncs] == [True, False]

    def test_race_detection_round_trip(self, rt):
        """The unsynchronized copy/kernel overlap bug is caught from
        the recorded ledger with the S301 rule id."""
        from repro.analysis import analyze_records
        copy_stream = CudaStream(rt, "copy")
        compute_stream = CudaStream(rt, "compute")
        copy_stream.enqueue(
            rt._transfer("copy", TransferKind.H2D, 1 << 20),
            kind="copy", writes=("buf",))
        compute_stream.enqueue(
            rt.launch(make_descriptor(), ConfigFlags(),
                      resident_fraction=1.0),
            kind="kernel", reads=("buf",))
        rt.env.run()
        assert {d.rule for d in analyze_records(rt.stream_ops)} == {"S301"}
