"""CUDA stream semantics tests."""

import numpy as np
import pytest

from repro.sim.pcie import TransferKind
from repro.sim.runtime import CudaRuntime
from repro.sim.streams import CudaStream, device_synchronize
from repro.sim.timing import ConfigFlags

from .test_kernel import make_descriptor


@pytest.fixture
def rt(system, calib):
    return CudaRuntime(system, calib, np.random.default_rng(0))


class TestStreamOrdering:
    def test_same_stream_serializes(self, rt):
        stream = CudaStream(rt, "s")
        order = []

        def tagged(tag, duration):
            yield rt.env.timeout(duration)
            order.append(tag)

        stream.enqueue(tagged("first", 100.0))
        stream.enqueue(tagged("second", 1.0))

        def main():
            yield from stream.synchronize()

        rt.env.run_process(main())
        # Despite "second" being shorter, stream order holds.
        assert order == ["first", "second"]

    def test_different_streams_overlap(self, rt):
        copy_stream = CudaStream(rt, "copy")
        compute_stream = CudaStream(rt, "compute")
        copy_stream.enqueue(
            rt._transfer("copy", TransferKind.H2D, 1 << 30))
        compute_stream.enqueue(
            rt.launch(make_descriptor(), ConfigFlags(),
                      resident_fraction=1.0))

        def main():
            yield from device_synchronize(rt, copy_stream, compute_stream)

        rt.env.run_process(main())
        copy_span = [e for e in rt.timeline.events
                     if e.category == "memcpy"][0]
        kernel_span = [e for e in rt.timeline.events
                       if e.category == "gpu_kernel"][0]
        # Both started at t=0: genuine overlap.
        assert copy_span.start_ns == 0.0
        assert kernel_span.start_ns == 0.0

    def test_cross_stream_dependency(self, rt):
        copy_stream = CudaStream(rt, "copy")
        compute_stream = CudaStream(rt, "compute")
        copy = copy_stream.enqueue(
            rt._transfer("copy", TransferKind.H2D, 1 << 30))
        compute_stream.enqueue(
            rt.launch(make_descriptor(), ConfigFlags(),
                      resident_fraction=1.0),
            after=copy)

        def main():
            yield from device_synchronize(rt, copy_stream, compute_stream)

        rt.env.run_process(main())
        copy_span = [e for e in rt.timeline.events
                     if e.category == "memcpy"][0]
        kernel_span = [e for e in rt.timeline.events
                       if e.category == "gpu_kernel"][0]
        # The kernel starts at the copy's *actual* completion; the
        # recorded copy duration carries measurement noise, so compare
        # with a tolerance.
        assert kernel_span.start_ns >= copy_span.end_ns * 0.9
        assert kernel_span.start_ns > 0.9 * copy_span.duration_ns

    def test_pending_flag(self, rt):
        stream = CudaStream(rt, "s")
        assert not stream.pending
        stream.enqueue(rt._transfer("copy", TransferKind.H2D, 1 << 20))
        assert stream.pending
        rt.env.run()
        assert not stream.pending

    def test_empty_stream_synchronize_is_noop(self, rt):
        stream = CudaStream(rt, "s")

        def main():
            yield from stream.synchronize()
            return "done"

        assert rt.env.run_process(main()) == "done"
