"""Unified-L1 miss-rate model tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import (ASYNC_LOAD_MISS_FACTOR, ASYNC_STORE_MISS_FACTOR,
                             REFERENCE_CARVEOUT, MissRates, capacity_factor,
                             l1_miss_rates)
from repro.sim.hardware import GpuSpec
from repro.sim.kernel import AccessPattern

from .test_kernel import make_descriptor


class TestMissRates:
    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            MissRates(load=1.5, store=0.0)
        with pytest.raises(ValueError):
            MissRates(load=0.5, store=-0.1)


class TestCapacityFactor:
    def test_reference_is_unity(self):
        assert capacity_factor(GpuSpec(), REFERENCE_CARVEOUT) == \
            pytest.approx(1.0)

    def test_smaller_l1_raises_misses(self):
        gpu = GpuSpec()
        assert capacity_factor(gpu, 128 * 1024) > 1.0

    def test_larger_l1_lowers_misses(self):
        gpu = GpuSpec()
        assert capacity_factor(gpu, 2 * 1024) < 1.0


class TestL1MissRates:
    def _rates(self, pattern, use_async=False, managed=False,
               prefetched=False, carveout=REFERENCE_CARVEOUT):
        descriptor = make_descriptor(access_pattern=pattern)
        return l1_miss_rates(descriptor, GpuSpec(), carveout,
                             use_async=use_async, managed=managed,
                             prefetched=prefetched)

    @pytest.mark.parametrize("pattern", list(AccessPattern))
    def test_rates_in_unit_interval(self, pattern):
        rates = self._rates(pattern)
        assert 0.0 <= rates.load <= 1.0
        assert 0.0 <= rates.store <= 1.0

    def test_random_misses_more_than_sequential(self):
        assert self._rates(AccessPattern.RANDOM).load > \
            self._rates(AccessPattern.SEQUENTIAL).load

    def test_async_helps_irregular_most(self):
        """The paper's lud result: -35.96 % load, -69.99 % store."""
        base = self._rates(AccessPattern.IRREGULAR)
        with_async = self._rates(AccessPattern.IRREGULAR, use_async=True)
        assert with_async.load / base.load == pytest.approx(
            ASYNC_LOAD_MISS_FACTOR[AccessPattern.IRREGULAR])
        assert with_async.store / base.store == pytest.approx(
            ASYNC_STORE_MISS_FACTOR[AccessPattern.IRREGULAR])

    def test_async_leaves_sequential_unchanged(self):
        base = self._rates(AccessPattern.SEQUENTIAL)
        with_async = self._rates(AccessPattern.SEQUENTIAL, use_async=True)
        assert with_async.load == pytest.approx(base.load)

    def test_prefetch_pollution_is_small_additive(self):
        base = self._rates(AccessPattern.SEQUENTIAL)
        polluted = self._rates(AccessPattern.SEQUENTIAL, managed=True,
                               prefetched=True)
        assert polluted.load > base.load
        assert polluted.load - base.load < 0.05

    def test_descriptor_overrides_take_precedence(self):
        descriptor = make_descriptor(l1_load_miss=0.123, l1_store_miss=0.456)
        rates = l1_miss_rates(descriptor, GpuSpec(), REFERENCE_CARVEOUT,
                              use_async=False, managed=False,
                              prefetched=False)
        assert rates.load == pytest.approx(0.123)
        assert rates.store == pytest.approx(0.456)

    @given(carveout_kb=st.sampled_from([2, 4, 8, 16, 32, 64, 128]),
           pattern=st.sampled_from(list(AccessPattern)),
           use_async=st.booleans(), managed=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_rates_always_valid(self, carveout_kb, pattern, use_async,
                                managed):
        rates = self._rates(pattern, use_async=use_async, managed=managed,
                            prefetched=managed, carveout=carveout_kb * 1024)
        assert 0.0 <= rates.load <= 1.0
        assert 0.0 <= rates.store <= 1.0

    def test_bigger_carveout_means_higher_misses(self):
        small_l1 = self._rates(AccessPattern.STRIDED, carveout=128 * 1024)
        big_l1 = self._rates(AccessPattern.STRIDED, carveout=2 * 1024)
        assert small_l1.load > big_l1.load
