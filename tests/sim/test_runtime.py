"""CUDA runtime facade tests."""

import numpy as np
import pytest

from repro.sim.runtime import CudaRuntime
from repro.sim.timing import ConfigFlags

from .test_kernel import make_descriptor


def make_runtime(system, calib, seed=0, footprint=0):
    return CudaRuntime(system, calib, np.random.default_rng(seed),
                       footprint_bytes=footprint)


class TestAllocation:
    def test_malloc_device_records_allocation_time(self, system, calib):
        rt = make_runtime(system, calib)
        rt.run(rt.malloc_device("a", 1 << 30))
        assert rt.timeline.category_time("allocation") > 0
        assert rt.timeline.category_time("memcpy") == 0

    def test_managed_registers_allocation(self, system, calib):
        rt = make_runtime(system, calib)
        rt.run(rt.malloc_managed("a", 1 << 20))
        assert rt.managed["a"].size_bytes == 1 << 20

    def test_unpopulated_managed_is_cheaper(self, system, calib):
        rt1 = make_runtime(system, calib)
        rt1.run(rt1.malloc_managed("a", 1 << 30, host_populated=True))
        rt2 = make_runtime(system, calib)
        rt2.run(rt2.malloc_managed("a", 1 << 30, host_populated=False))
        assert rt2.timeline.category_time("allocation") < \
            rt1.timeline.category_time("allocation")

    def test_free_managed_releases(self, system, calib):
        rt = make_runtime(system, calib)
        rt.run(rt.malloc_managed("a", 1 << 20))
        rt.run(rt.free("a", 1 << 20, managed=True))
        assert "a" not in rt.managed.allocations


class TestTransfers:
    def test_memcpy_records_memcpy_category(self, system, calib):
        rt = make_runtime(system, calib)
        rt.run(rt.memcpy_h2d("a", 1 << 30))
        assert rt.timeline.category_time("memcpy") > 0

    def test_zero_byte_copy_is_free(self, system, calib):
        rt = make_runtime(system, calib)
        rt.run(rt.memcpy_h2d("a", 0))
        assert rt.timeline.category_time("memcpy") == 0

    def test_prefetch_marks_range_resident(self, system, calib):
        rt = make_runtime(system, calib)
        rt.run(rt.malloc_managed("a", 1 << 20))
        rt.run(rt.uvm_prefetch("a"))
        assert rt.managed["a"].resident_fraction == 1.0

    def test_host_read_writes_back_dirty_pages(self, system, calib):
        rt = make_runtime(system, calib)
        rt.run(rt.malloc_managed("a", 1 << 26))
        rt.managed.device_wrote("a", 1.0)
        before = rt.timeline.category_time("memcpy")
        rt.run(rt.uvm_host_read("a", 0.5))
        assert rt.timeline.category_time("memcpy") > before


class TestLaunch:
    def test_launch_records_kernel_and_counters(self, system, calib):
        rt = make_runtime(system, calib)
        rt.run(rt.launch(make_descriptor(), ConfigFlags(),
                         resident_fraction=1.0))
        assert rt.timeline.category_time("gpu_kernel") > 0
        assert len(rt.counters.kernels) == 1

    def test_managed_cold_launch_spawns_migration(self, system, calib):
        rt = make_runtime(system, calib)
        rt.run(rt.launch(make_descriptor(), ConfigFlags(managed=True),
                         resident_fraction=0.0))
        migrations = [e for e in rt.timeline.events
                      if "migrate" in e.name]
        assert migrations
        assert rt.timeline.category_time("memcpy") > 0

    def test_launch_repeated_counts_scale(self, system, calib):
        descriptor = make_descriptor()
        rt1 = make_runtime(system, calib)
        rt1.run(rt1.launch_repeated(descriptor, ConfigFlags(), count=1))
        rt5 = make_runtime(system, calib)
        rt5.run(rt5.launch_repeated(descriptor, ConfigFlags(), count=5))
        assert rt5.timeline.category_time("gpu_kernel") == pytest.approx(
            5 * rt1.timeline.category_time("gpu_kernel"), rel=0.05)
        assert rt5.counters.kernels[0].instructions.total == pytest.approx(
            5 * rt1.counters.kernels[0].instructions.total)

    def test_launch_repeated_warm_rest_cheaper(self, system, calib):
        descriptor = make_descriptor()
        flags = ConfigFlags(managed=True)
        rt_cold = make_runtime(system, calib)
        rt_cold.run(rt_cold.launch_repeated(descriptor, flags, count=5,
                                            resident_first=0.0,
                                            resident_rest=0.0))
        rt_warm = make_runtime(system, calib)
        rt_warm.run(rt_warm.launch_repeated(descriptor, flags, count=5,
                                            resident_first=0.0,
                                            resident_rest=1.0))
        assert rt_warm.timeline.category_time("gpu_kernel") < \
            rt_cold.timeline.category_time("gpu_kernel")

    def test_invalid_count_rejected(self, system, calib):
        rt = make_runtime(system, calib)
        with pytest.raises(ValueError):
            rt.run(rt.launch_repeated(make_descriptor(), ConfigFlags(),
                                      count=0))


class TestNoiseDeterminism:
    def test_same_seed_same_times(self, system, calib):
        times = []
        for _ in range(2):
            rt = make_runtime(system, calib, seed=42)
            rt.run(rt.malloc_device("a", 1 << 30))
            rt.run(rt.memcpy_h2d("a", 1 << 30))
            times.append(rt.timeline.wall_ns())
        assert times[0] == times[1]

    def test_different_seeds_differ(self, system, calib):
        times = set()
        for seed in range(5):
            rt = make_runtime(system, calib, seed=seed)
            rt.run(rt.malloc_device("a", 1 << 30))
            times.add(rt.timeline.wall_ns())
        assert len(times) == 5
