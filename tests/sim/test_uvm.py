"""Managed-memory residency tracking tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.hardware import GIB, UvmSpec
from repro.sim.uvm import ManagedSpace, UvmError


@pytest.fixture
def space():
    return ManagedSpace(UvmSpec(), gpu_capacity_bytes=40 * GIB)


class TestAllocationLifecycle:
    def test_allocate_and_free(self, space):
        space.allocate("a", 1 << 20)
        assert space["a"].size_bytes == 1 << 20
        space.free("a")
        with pytest.raises(UvmError):
            space["a"]

    def test_duplicate_name_rejected(self, space):
        space.allocate("a", 1024)
        with pytest.raises(UvmError):
            space.allocate("a", 1024)

    def test_free_unknown_rejected(self, space):
        with pytest.raises(UvmError):
            space.free("missing")

    def test_zero_size_rejected(self, space):
        with pytest.raises(UvmError):
            space.allocate("empty", 0)

    def test_oversubscription_detection(self, space):
        space.allocate("big", 39 * GIB)
        assert not space.oversubscribed()
        space.allocate("more", 2 * GIB)
        assert space.oversubscribed()


class TestDemandAccess:
    def test_first_touch_migrates_everything(self, space):
        space.allocate("a", 1 << 20)
        plan = space.demand_access("a", 1.0)
        assert plan.h2d_bytes == 1 << 20
        assert space["a"].resident_fraction == 1.0

    def test_second_touch_is_free(self, space):
        space.allocate("a", 1 << 20)
        space.demand_access("a", 1.0)
        plan = space.demand_access("a", 1.0)
        assert plan.h2d_bytes == 0

    def test_partial_then_full(self, space):
        space.allocate("a", 1 << 20)
        first = space.demand_access("a", 0.25)
        second = space.demand_access("a", 1.0)
        assert first.h2d_bytes + second.h2d_bytes == 1 << 20

    def test_fault_blocks_are_64k_aligned(self, space):
        space.allocate("a", 100 * 1024)
        plan = space.demand_access("a", 1.0)
        assert plan.fault_blocks == 2  # ceil(100 KiB / 64 KiB)

    def test_invalid_fraction_rejected(self, space):
        space.allocate("a", 1024)
        with pytest.raises(UvmError):
            space.demand_access("a", 0.0)
        with pytest.raises(UvmError):
            space.demand_access("a", 1.1)


class TestPrefetch:
    def test_prefetch_moves_missing_range(self, space):
        space.allocate("a", 1 << 20)
        plan = space.prefetch("a")
        assert plan.h2d_bytes == 1 << 20
        assert space.demand_access("a", 1.0).h2d_bytes == 0

    def test_prefetch_after_partial_residency(self, space):
        space.allocate("a", 1 << 20)
        space.demand_access("a", 0.5)
        plan = space.prefetch("a")
        assert plan.h2d_bytes == (1 << 20) // 2


class TestWriteback:
    def test_host_read_migrates_only_dirty_intersection(self, space):
        space.allocate("out", 1 << 20)
        space.device_wrote("out", 0.5)
        plan = space.host_read("out", 1.0)
        assert plan.d2h_bytes == (1 << 20) // 2

    def test_clean_pages_do_not_move(self, space):
        space.allocate("out", 1 << 20)
        plan = space.host_read("out", 1.0)
        assert plan.d2h_bytes == 0

    def test_repeated_host_read_is_free(self, space):
        space.allocate("out", 1 << 20)
        space.device_wrote("out", 1.0)
        space.host_read("out", 1.0)
        assert space.host_read("out", 1.0).d2h_bytes == 0

    def test_device_write_makes_resident(self, space):
        space.allocate("out", 1 << 20)
        space.device_wrote("out", 1.0)
        assert space["out"].resident_fraction == 1.0


class TestEviction:
    def test_evict_clean_pages_costs_nothing(self, space):
        space.allocate("a", 1 << 20)
        space.demand_access("a", 1.0)
        plan = space.evict("a", 1.0)
        assert plan.d2h_bytes == 0
        assert space["a"].resident_fraction == 0.0

    def test_evict_dirty_pages_writes_back(self, space):
        space.allocate("a", 1 << 20)
        space.device_wrote("a", 1.0)
        plan = space.evict("a", 0.5)
        assert plan.d2h_bytes == (1 << 20) // 2


class TestInvariants:
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["touch", "prefetch", "write", "read",
                                   "evict"]),
                  st.floats(min_value=0.01, max_value=1.0)),
        max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_residency_fractions_stay_bounded(self, ops):
        space = ManagedSpace(UvmSpec(), gpu_capacity_bytes=40 * GIB)
        space.allocate("a", 1 << 20)
        for op, fraction in ops:
            if op == "touch":
                space.demand_access("a", fraction)
            elif op == "prefetch":
                space.prefetch("a", fraction)
            elif op == "write":
                space.device_wrote("a", fraction)
            elif op == "read":
                space.host_read("a", fraction)
            elif op == "evict":
                space.evict("a", fraction)
            allocation = space["a"]
            assert 0.0 <= allocation.resident_fraction <= 1.0
            assert 0.0 <= allocation.device_dirty_fraction <= 1.0
