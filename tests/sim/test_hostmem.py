"""Host DRAM placement (Fig. 6 mechanism) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.calibration import NoiseModel
from repro.sim.hardware import GIB, CpuSpec
from repro.sim.hostmem import HostPlacement, place_host_data

CPU = CpuSpec()
NOISE = NoiseModel()


class TestHostPlacement:
    def test_validation(self):
        with pytest.raises(ValueError):
            HostPlacement(10, spill_fraction=1.5, time_multiplier=1.0)
        with pytest.raises(ValueError):
            HostPlacement(10, spill_fraction=0.5, time_multiplier=0.9)

    def test_negative_footprint_rejected(self):
        with pytest.raises(ValueError):
            place_host_data(-1, CPU, NOISE, np.random.default_rng(0))


class TestPlacement:
    def test_small_footprints_never_spill(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            placement = place_host_data(4 * GIB, CPU, NOISE, rng)
            assert placement.spill_fraction == 0.0
            assert placement.time_multiplier == 1.0

    def test_mega_footprints_can_spill(self):
        """32 GB against a 64 GB chip: the Fig. 6 instability."""
        rng = np.random.default_rng(7)
        multipliers = [place_host_data(32 * GIB, CPU, NOISE, rng)
                       .time_multiplier for _ in range(50)]
        assert max(multipliers) > 1.05
        assert min(multipliers) >= 1.0

    def test_spill_is_random_per_run(self):
        rng = np.random.default_rng(3)
        fractions = {place_host_data(32 * GIB, CPU, NOISE, rng)
                     .spill_fraction for _ in range(20)}
        assert len(fractions) > 10

    def test_threshold_boundary(self):
        rng = np.random.default_rng(0)
        at_threshold = int(NOISE.spill_threshold * CPU.dram_chip_bytes)
        placement = place_host_data(at_threshold, CPU, NOISE, rng)
        assert placement.spill_fraction == 0.0

    def test_multiplier_consistent_with_spill(self):
        rng = np.random.default_rng(5)
        for _ in range(30):
            placement = place_host_data(40 * GIB, CPU, NOISE, rng)
            expected = (1.0 - placement.spill_fraction) \
                + placement.spill_fraction / CPU.remote_chip_penalty
            assert placement.time_multiplier == pytest.approx(expected)

    @given(footprint_gb=st.integers(min_value=0, max_value=64),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_placement_always_valid(self, footprint_gb, seed):
        rng = np.random.default_rng(seed)
        placement = place_host_data(footprint_gb * GIB, CPU, NOISE, rng)
        assert 0.0 <= placement.spill_fraction <= 1.0
        assert placement.time_multiplier >= 1.0
        # Worst case: everything remote.
        assert placement.time_multiplier <= 1.0 / CPU.remote_chip_penalty
