"""Kernel timing model tests: the config-dependent behaviours."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import AccessPattern
from repro.sim.timing import ConfigFlags, simulate_kernel

from .test_kernel import make_descriptor

CARVEOUT = 32 * 1024

STANDARD = ConfigFlags()
ASYNC = ConfigFlags(use_async=True)
UVM = ConfigFlags(managed=True)
UVM_PREFETCH = ConfigFlags(managed=True, prefetched=True)
UVM_PREFETCH_ASYNC = ConfigFlags(use_async=True, managed=True,
                                 prefetched=True)


def run(descriptor, flags, system, calib, resident=None, carveout=CARVEOUT):
    if resident is None:
        resident = 0.0 if flags.managed else 1.0
    return simulate_kernel(descriptor, flags, system, calib,
                           smem_carveout_bytes=carveout,
                           resident_fraction=resident)


def memory_bound_descriptor(**overrides):
    """Large streaming tile load, modest compute."""
    base = dict(blocks=4096, tiles_per_block=64, tile_bytes=2048,
                compute_cycles_per_tile=60.0, write_bytes=0)
    base.update(overrides)
    return make_descriptor(**base)


def compute_bound_descriptor(**overrides):
    base = dict(blocks=4096, tiles_per_block=64, tile_bytes=2048,
                compute_cycles_per_tile=50_000.0, write_bytes=0)
    base.update(overrides)
    return make_descriptor(**base)


class TestConfigFlags:
    def test_prefetch_requires_managed(self):
        with pytest.raises(ValueError):
            ConfigFlags(prefetched=True, managed=False)

    def test_resident_fraction_validated(self, system, calib):
        with pytest.raises(ValueError):
            run(make_descriptor(), UVM, system, calib, resident=1.5)


class TestAsyncOverlap:
    def test_async_speeds_up_memory_bound_kernels(self, system, calib):
        descriptor = memory_bound_descriptor()
        standard = run(descriptor, STANDARD, system, calib)
        with_async = run(descriptor, ASYNC, system, calib)
        assert with_async.duration_ns < standard.duration_ns

    def test_async_overlap_bounded_by_stage_times(self, system, calib):
        descriptor = memory_bound_descriptor()
        standard = run(descriptor, STANDARD, system, calib)
        with_async = run(descriptor, ASYNC, system, calib)
        # Overlap cannot beat the longer stage.
        assert with_async.duration_ns >= max(standard.load_ns / 2.0, 1.0)

    def test_async_hurts_pipelined_compute_bound_kernels(self, system, calib):
        descriptor = compute_bound_descriptor(sync_overlap=1.0,
                                              async_copies_per_tile=64)
        standard = run(descriptor, STANDARD, system, calib)
        with_async = run(descriptor, ASYNC, system, calib)
        assert with_async.duration_ns > standard.duration_ns

    def test_misfit_pipeline_degenerates_to_overhead(self, system, calib):
        # Balanced load/compute so double-buffer overlap actually pays.
        descriptor = memory_bound_descriptor(tile_bytes=24 * 1024,
                                             compute_cycles_per_tile=30_000.0)
        fits = run(descriptor, ASYNC, system, calib, carveout=64 * 1024)
        misfit = run(descriptor, ASYNC, system, calib, carveout=32 * 1024)
        assert misfit.duration_ns > fits.duration_ns

    def test_serialized_staging_never_overlaps(self, system, calib):
        overlapping = memory_bound_descriptor()
        serialized = memory_bound_descriptor(async_serializes=True)
        fast = run(overlapping, ASYNC, system, calib)
        slow = run(serialized, ASYNC, system, calib)
        assert slow.duration_ns > fast.duration_ns

    def test_control_cycles_override_scales_cost(self, system, calib):
        cheap = memory_bound_descriptor(async_copies_per_tile=100,
                                        async_control_cycles_per_copy=1.0,
                                        async_serializes=True)
        dear = memory_bound_descriptor(async_copies_per_tile=100,
                                       async_control_cycles_per_copy=200.0,
                                       async_serializes=True)
        assert run(dear, ASYNC, system, calib).duration_ns > \
            run(cheap, ASYNC, system, calib).duration_ns

    def test_sync_overlap_reduces_standard_time(self, system, calib):
        naive = memory_bound_descriptor(sync_overlap=0.0,
                                        compute_cycles_per_tile=5_000.0)
        pipelined = memory_bound_descriptor(sync_overlap=1.0,
                                            compute_cycles_per_tile=5_000.0)
        assert run(pipelined, STANDARD, system, calib).duration_ns < \
            run(naive, STANDARD, system, calib).duration_ns


class TestUvmEffects:
    def test_cold_uvm_slower_than_standard(self, system, calib):
        descriptor = memory_bound_descriptor()
        standard = run(descriptor, STANDARD, system, calib)
        cold = run(descriptor, UVM, system, calib, resident=0.0)
        assert cold.duration_ns > 1.5 * standard.duration_ns

    def test_warm_uvm_close_to_standard(self, system, calib):
        descriptor = memory_bound_descriptor()
        standard = run(descriptor, STANDARD, system, calib)
        warm = run(descriptor, UVM, system, calib, resident=1.0)
        assert warm.duration_ns < 1.25 * standard.duration_ns
        assert warm.fault_batches == 0

    def test_demand_migration_volume_matches_missing(self, system, calib):
        descriptor = memory_bound_descriptor()
        cold = run(descriptor, UVM, system, calib, resident=0.0)
        half = run(descriptor, UVM, system, calib, resident=0.5)
        assert cold.demand_migrated_bytes == pytest.approx(
            descriptor.footprint_bytes, rel=0.01)
        assert half.demand_migrated_bytes == pytest.approx(
            descriptor.footprint_bytes / 2, rel=0.01)

    def test_fault_batches_follow_migration_blocks(self, system, calib):
        descriptor = memory_bound_descriptor()
        cold = run(descriptor, UVM, system, calib, resident=0.0)
        blocks = descriptor.footprint_bytes / system.uvm.migration_block_bytes
        expected = -(-blocks // system.uvm.fault_batch_size)
        assert cold.fault_batches == expected

    def test_prefetch_l2_gain_for_regular_patterns(self, system, calib):
        descriptor = memory_bound_descriptor()
        standard = run(descriptor, STANDARD, system, calib)
        prefetched = run(descriptor, UVM_PREFETCH, system, calib,
                         resident=1.0)
        assert prefetched.duration_ns < standard.duration_ns

    def test_no_prefetch_gain_for_irregular_patterns(self, system, calib):
        descriptor = memory_bound_descriptor(
            access_pattern=AccessPattern.IRREGULAR)
        standard = run(descriptor, STANDARD, system, calib)
        prefetched = run(descriptor, UVM_PREFETCH, system, calib,
                         resident=1.0)
        assert prefetched.duration_ns >= standard.duration_ns

    def test_large_carveout_penalizes_managed_configs(self, system, calib):
        descriptor = memory_bound_descriptor()
        balanced = run(descriptor, UVM_PREFETCH, system, calib,
                       resident=1.0, carveout=32 * 1024)
        squeezed = run(descriptor, UVM_PREFETCH, system, calib,
                       resident=1.0, carveout=128 * 1024)
        assert squeezed.duration_ns > balanced.duration_ns

    def test_explicit_configs_never_migrate(self, system, calib):
        descriptor = memory_bound_descriptor()
        result = run(descriptor, STANDARD, system, calib)
        assert result.demand_migrated_bytes == 0
        assert result.fault_stall_ns == 0.0


class TestInvariants:
    # Module-level specs: hypothesis forbids function-scoped fixtures.
    SYSTEM = None
    CALIB = None

    @classmethod
    def setup_class(cls):
        from repro.sim.calibration import default_calibration
        from repro.sim.hardware import default_system
        cls.SYSTEM = default_system()
        cls.CALIB = default_calibration()

    @given(resident=st.floats(min_value=0.0, max_value=1.0),
           pattern=st.sampled_from(list(AccessPattern)),
           use_async=st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_durations_positive_and_finite(self, resident, pattern,
                                           use_async):
        descriptor = memory_bound_descriptor(access_pattern=pattern)
        flags = ConfigFlags(use_async=use_async, managed=True,
                            prefetched=False)
        result = run(descriptor, flags, self.SYSTEM, self.CALIB,
                     resident=resident)
        assert result.duration_ns > 0
        assert result.duration_ns < 1e12

    @given(resident=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_more_residency_never_slower(self, resident):
        descriptor = memory_bound_descriptor()
        cold = run(descriptor, UVM, self.SYSTEM, self.CALIB,
                   resident=resident)
        warm = run(descriptor, UVM, self.SYSTEM, self.CALIB, resident=1.0)
        assert warm.duration_ns <= cold.duration_ns + 1e-6

    def test_deterministic(self, system, calib):
        descriptor = memory_bound_descriptor()
        first = run(descriptor, ASYNC, system, calib)
        second = run(descriptor, ASYNC, system, calib)
        assert first.duration_ns == second.duration_ns


class TestAsyncMechanism:
    """Sec. 3.2.1: the Pipeline API beats Arrive/Wait Barriers."""

    def test_arrive_wait_is_slower(self, system, calib):
        import dataclasses
        from repro.sim.kernel import AsyncMechanism
        descriptor = memory_bound_descriptor()
        barrier = dataclasses.replace(
            descriptor, async_mechanism=AsyncMechanism.ARRIVE_WAIT)
        pipeline_time = run(descriptor, ASYNC, system, calib).duration_ns
        barrier_time = run(barrier, ASYNC, system, calib).duration_ns
        assert barrier_time > pipeline_time

    def test_mechanism_irrelevant_without_async(self, system, calib):
        import dataclasses
        from repro.sim.kernel import AsyncMechanism
        descriptor = memory_bound_descriptor()
        barrier = dataclasses.replace(
            descriptor, async_mechanism=AsyncMechanism.ARRIVE_WAIT)
        assert run(descriptor, STANDARD, system, calib).duration_ns == \
            run(barrier, STANDARD, system, calib).duration_ns

    def test_pipeline_is_the_default(self):
        from repro.sim.kernel import AsyncMechanism
        assert memory_bound_descriptor().async_mechanism is \
            AsyncMechanism.PIPELINE
