"""Timeline / trace tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.trace import Timeline, TraceEvent, merge_intervals


class TestTraceEvent:
    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent("x", "bogus", 0.0, 1.0)

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent("x", "memcpy", 10.0, 5.0)

    def test_duration(self):
        assert TraceEvent("x", "memcpy", 5.0, 15.0).duration_ns == 10.0


class TestMergeIntervals:
    def test_disjoint_stay_separate(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_overlapping_merge(self):
        assert merge_intervals([(0, 5), (3, 8), (10, 12)]) == \
            [(0, 8), (10, 12)]

    def test_touching_merge(self):
        assert merge_intervals([(0, 5), (5, 8)]) == [(0, 8)]

    def test_unordered_input(self):
        assert merge_intervals([(10, 12), (0, 5)]) == [(0, 5), (10, 12)]

    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 100))
                    .map(lambda p: (min(p), max(p))), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_merged_intervals_are_disjoint_and_cover(self, intervals):
        merged = merge_intervals(intervals)
        for (a_start, a_end), (b_start, b_end) in zip(merged, merged[1:]):
            assert a_end < b_start
        total_input = sum(end - start for start, end in intervals)
        total_merged = sum(end - start for start, end in merged)
        assert total_merged <= total_input + 1e-9


class TestTimeline:
    def _timeline(self):
        timeline = Timeline()
        timeline.record("alloc", "allocation", 0.0, 10.0)
        timeline.record("copy", "memcpy", 10.0, 30.0)
        timeline.record("kernel1", "gpu_kernel", 30.0, 50.0)
        timeline.record("kernel2", "gpu_kernel", 40.0, 60.0)
        return timeline

    def test_category_time_sums_durations(self):
        assert self._timeline().category_time("gpu_kernel") == 40.0

    def test_busy_time_merges_overlap(self):
        assert self._timeline().busy_time("gpu_kernel") == 30.0

    def test_wall_and_span(self):
        timeline = self._timeline()
        assert timeline.span() == (0.0, 60.0)
        assert timeline.wall_ns() == 60.0

    def test_breakdown_has_all_categories(self):
        breakdown = self._timeline().breakdown()
        assert set(breakdown) == {"allocation", "memcpy", "gpu_kernel",
                                  "host"}
        assert breakdown["host"] == 0.0

    def test_empty_timeline(self):
        timeline = Timeline()
        assert timeline.wall_ns() == 0.0
        assert timeline.category_time("memcpy") == 0.0

    def test_render_contains_lanes(self):
        art = self._timeline().render(width=40)
        assert "allocation" in art
        assert "K" in art
        assert "M" in art
