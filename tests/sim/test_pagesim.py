"""Page-granular UVM fault-simulation tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.hardware import UvmSpec
from repro.sim.kernel import AccessPattern
from repro.sim.pagesim import (PageSimResult, fault_study,
                               generate_access_trace, replay_trace)

SPEC = UvmSpec()
PAGES_PER_BLOCK = SPEC.migration_block_bytes // SPEC.page_bytes


class TestTraceGeneration:
    @pytest.mark.parametrize("pattern", list(AccessPattern))
    def test_traces_stay_in_range(self, pattern):
        trace = generate_access_trace(pattern, total_pages=1000,
                                      accesses=5000,
                                      rng=np.random.default_rng(1))
        assert trace.shape == (5000,)
        assert trace.min() >= 0
        assert trace.max() < 1000

    def test_sequential_is_monotone_modulo_wrap(self):
        trace = generate_access_trace(AccessPattern.SEQUENTIAL, 100, 250)
        np.testing.assert_array_equal(trace[:100], np.arange(100))
        np.testing.assert_array_equal(trace[100:200], np.arange(100))

    def test_random_covers_broadly(self):
        trace = generate_access_trace(AccessPattern.RANDOM, 1000, 10000,
                                      rng=np.random.default_rng(2))
        assert len(np.unique(trace)) > 900

    def test_irregular_has_locality(self):
        trace = generate_access_trace(AccessPattern.IRREGULAR, 10000, 5000,
                                      rng=np.random.default_rng(3),
                                      locality=0.9)
        deltas = np.abs(np.diff(trace))
        local = (deltas <= 4).mean()
        assert local > 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_access_trace(AccessPattern.SEQUENTIAL, 0, 10)
        with pytest.raises(ValueError):
            generate_access_trace(AccessPattern.SEQUENTIAL, 10, 0)


class TestReplay:
    def test_cold_sequential_faults_once_per_block(self):
        pages = 64 * PAGES_PER_BLOCK
        trace = generate_access_trace(AccessPattern.SEQUENTIAL, pages,
                                      pages)
        result = replay_trace(trace, pages, SPEC)
        assert result.faults == 64
        assert result.migrated_blocks == 64
        assert result.prefetched_blocks == 0

    def test_repeat_touches_do_not_refault(self):
        pages = 8 * PAGES_PER_BLOCK
        trace = np.concatenate([np.arange(pages)] * 3)
        result = replay_trace(trace, pages, SPEC)
        assert result.faults == 8

    def test_batch_count(self):
        pages = 130 * PAGES_PER_BLOCK
        trace = generate_access_trace(AccessPattern.SEQUENTIAL, pages,
                                      pages)
        result = replay_trace(trace, pages, SPEC)
        # 130 faults / 64 per batch -> 3 batches.
        assert result.fault_batches == 3

    def test_prefetch_cuts_sequential_faults(self):
        pages = 256 * PAGES_PER_BLOCK
        trace = generate_access_trace(AccessPattern.SEQUENTIAL, pages,
                                      pages)
        demand = replay_trace(trace, pages, SPEC, prefetch=False)
        prefetched = replay_trace(trace, pages, SPEC, prefetch=True)
        assert prefetched.faults < demand.faults / 5
        assert prefetched.prefetch_accuracy == pytest.approx(1.0)

    def test_prefetch_useless_for_random(self):
        pages = 256 * PAGES_PER_BLOCK
        trace = generate_access_trace(AccessPattern.RANDOM, pages,
                                      4 * pages,
                                      rng=np.random.default_rng(5))
        prefetched = replay_trace(trace, pages, SPEC, prefetch=True)
        demand = replay_trace(trace, pages, SPEC, prefetch=False)
        assert prefetched.faults > 0.9 * demand.faults

    def test_out_of_range_trace_rejected(self):
        with pytest.raises(ValueError):
            replay_trace(np.array([10_000_000]), 100, SPEC)

    def test_migrated_bytes_property(self):
        result = PageSimResult(total_pages=10, accesses=10, faults=1,
                               fault_batches=1, migrated_blocks=3,
                               prefetched_blocks=0,
                               prefetch_useful_blocks=0)
        assert result.migrated_bytes == 3 * 64 * 1024

    @given(pattern=st.sampled_from(list(AccessPattern)),
           blocks=st.integers(4, 64), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_replay_invariants(self, pattern, blocks, seed):
        pages = blocks * PAGES_PER_BLOCK
        trace = generate_access_trace(pattern, pages, 4 * pages,
                                      rng=np.random.default_rng(seed))
        result = replay_trace(trace, pages, SPEC, prefetch=True)
        assert 0 <= result.faults <= result.accesses
        assert result.migrated_blocks <= blocks
        assert result.prefetch_useful_blocks <= result.prefetched_blocks
        # Everything touched must have been migrated.
        assert result.migrated_blocks >= result.faults


class TestMechanismValidation:
    """The detailed page simulation validates the analytic model."""

    def test_fault_study_shapes(self):
        study = fault_study(total_pages=4096, accesses=16384)
        assert set(study) == {p.value for p in AccessPattern}

    def test_prefetch_friendliness_matches_descriptor_defaults(self):
        """AccessPattern.prefetch_friendly and the descriptor's derived
        prefetch accuracies must agree with the page-level mechanism."""
        study = fault_study(total_pages=4096, accesses=16384)
        for pattern in AccessPattern:
            reduction = study[pattern.value]["fault_reduction"]
            if pattern.prefetch_friendly:
                assert reduction > 0.5
            else:
                assert reduction < 0.3

    def test_analytic_migration_volume_matches_detailed(self):
        """The timing model's 'missing bytes migrate once' assumption
        holds in the detailed replay for full-coverage traces."""
        pages = 512 * PAGES_PER_BLOCK
        trace = generate_access_trace(AccessPattern.SEQUENTIAL, pages,
                                      pages)
        result = replay_trace(trace, pages, SPEC)
        footprint_bytes = pages * SPEC.page_bytes
        assert result.migrated_bytes == footprint_bytes

    def test_analytic_batch_count_matches_detailed(self):
        pages = 512 * PAGES_PER_BLOCK
        trace = generate_access_trace(AccessPattern.SEQUENTIAL, pages,
                                      pages)
        result = replay_trace(trace, pages, SPEC)
        import math
        analytic = math.ceil(512 / SPEC.fault_batch_size)
        assert result.fault_batches == analytic


class TestIrregularGoldenTrace:
    """The IRREGULAR walk is a vectorized segment scan; these goldens
    were captured from the original scalar per-access loop and pin the
    vectorization as bit-identical (same RNG draw order, same floored
    modulo distributed over the local-step sums)."""

    def test_golden_head_tail_sum(self):
        trace = generate_access_trace(
            AccessPattern.IRREGULAR, total_pages=257, accesses=4096,
            rng=np.random.default_rng(1234), locality=0.7)
        assert trace.dtype == np.int64
        assert len(trace) == 4096
        assert trace[:24].tolist() == [
            253, 255, 256, 252, 250, 254, 251, 255, 35, 35, 34, 35,
            37, 34, 37, 33, 203, 206, 208, 205, 142, 141, 145, 144]
        assert trace[-8:].tolist() == [48, 46, 132, 134, 135, 170, 167, 171]
        assert int(trace.sum()) == 519900

    def test_golden_high_locality(self):
        trace = generate_access_trace(
            AccessPattern.IRREGULAR, total_pages=64, accesses=1000,
            rng=np.random.default_rng(7), locality=0.95)
        assert trace[:16].tolist() == [
            0, 63, 61, 0, 0, 3, 0, 0, 3, 5, 7, 7, 10, 9, 10, 10]
        assert int(trace.sum()) == 30324

    @pytest.mark.parametrize("seed", [0, 1, 99])
    @pytest.mark.parametrize("locality", [0.0, 0.5, 1.0])
    @pytest.mark.parametrize("total_pages", [1, 7, 129])
    def test_matches_scalar_walk(self, seed, locality, total_pages):
        """Cross-check against a direct scalar reimplementation of the
        pointer-chase loop (the pre-vectorization semantics)."""
        accesses = 512
        trace = generate_access_trace(
            AccessPattern.IRREGULAR, total_pages, accesses,
            rng=np.random.default_rng(seed), locality=locality)

        rng = np.random.default_rng(seed)
        jumps = rng.integers(0, total_pages, size=accesses, dtype=np.int64)
        local_steps = rng.integers(-4, 5, size=accesses, dtype=np.int64)
        is_local = rng.random(accesses) < locality
        pos = int(jumps[0])
        expect = []
        for i in range(accesses):
            if is_local[i]:
                pos = (pos + int(local_steps[i])) % total_pages
            else:
                pos = int(jumps[i]) % total_pages
            expect.append(pos)
        assert trace.tolist() == expect
