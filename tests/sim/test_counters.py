"""CUPTI-style counter collection tests."""

import pytest

from repro.sim.counters import (ASYNC_MEMORY_INST_FACTOR, CounterReport,
                                collect_counters)
from repro.sim.hardware import GpuSpec
from repro.sim.kernel import AccessPattern, InstructionMix

from .test_kernel import make_descriptor

CARVEOUT = 32 * 1024


def collect(descriptor, calib, **flags):
    defaults = dict(use_async=False, managed=False, prefetched=False,
                    occupancy=0.5)
    defaults.update(flags)
    return collect_counters(descriptor, GpuSpec(), calib, CARVEOUT,
                            **defaults)


class TestCollect:
    def test_standard_matches_base_instructions(self, calib):
        mix = InstructionMix(memory=100, fp=200, integer=50, control=25)
        descriptor = make_descriptor(insts_per_tile=mix)
        counters = collect(descriptor, calib)
        assert counters.instructions.control == pytest.approx(
            25 * descriptor.total_tiles)

    def test_async_adds_control_and_integer(self, calib):
        mix = InstructionMix(memory=100, fp=200, integer=50, control=25)
        descriptor = make_descriptor(insts_per_tile=mix,
                                     async_copies_per_tile=8)
        base = collect(descriptor, calib)
        with_async = collect(descriptor, calib, use_async=True)
        copies = 8 * descriptor.total_tiles
        assert with_async.instructions.control == pytest.approx(
            base.instructions.control
            + copies * calib.kernel.async_ctrl_per_copy)
        assert with_async.instructions.integer == pytest.approx(
            base.instructions.integer
            + copies * calib.kernel.async_int_per_copy)

    def test_async_trims_memory_instructions(self, calib):
        mix = InstructionMix(memory=100, fp=1, integer=1, control=1)
        descriptor = make_descriptor(insts_per_tile=mix)
        base = collect(descriptor, calib)
        with_async = collect(descriptor, calib, use_async=True)
        assert with_async.instructions.memory == pytest.approx(
            base.instructions.memory * ASYNC_MEMORY_INST_FACTOR)

    def test_uvm_leaves_instruction_mix_unchanged(self, calib):
        """Fig. 9: UVM does not noticeably change instruction counts."""
        mix = InstructionMix(memory=100, fp=200, integer=50, control=25)
        descriptor = make_descriptor(insts_per_tile=mix)
        base = collect(descriptor, calib)
        managed = collect(descriptor, calib, managed=True)
        assert managed.instructions.total == pytest.approx(
            base.instructions.total)

    def test_dram_bytes_respect_reuse(self, calib):
        descriptor = make_descriptor(reuse=4.0)
        counters = collect(descriptor, calib)
        assert counters.dram_load_bytes == pytest.approx(
            descriptor.load_bytes / 4.0)
        assert counters.dram_store_bytes == descriptor.write_bytes


class TestCounterReport:
    def test_aggregates_instruction_mix(self, calib):
        report = CounterReport()
        descriptor = make_descriptor(
            insts_per_tile=InstructionMix(memory=1, fp=2, integer=3,
                                          control=4))
        report.add(collect(descriptor, calib))
        report.add(collect(descriptor, calib))
        assert report.instructions.fp == pytest.approx(
            2 * 2 * descriptor.total_tiles)
        assert report.by_category()["control"] == pytest.approx(
            2 * 4 * descriptor.total_tiles)

    def test_traffic_weighted_miss_rates(self, calib):
        report = CounterReport()
        heavy = make_descriptor(access_pattern=AccessPattern.RANDOM,
                                tiles_per_block=64)
        light = make_descriptor(access_pattern=AccessPattern.SEQUENTIAL,
                                tiles_per_block=1)
        report.add(collect(heavy, calib))
        report.add(collect(light, calib))
        blended = report.mean_miss_rates()
        heavy_only = collect(heavy, calib).l1
        light_only = collect(light, calib).l1
        assert light_only.load < blended.load <= heavy_only.load

    def test_empty_report_is_zero(self):
        report = CounterReport()
        assert report.mean_miss_rates().load == 0.0
        assert report.mean_occupancy() == 0.0
        assert report.instructions.total == 0.0

    def test_mean_occupancy(self, calib):
        report = CounterReport()
        descriptor = make_descriptor()
        report.add(collect(descriptor, calib, occupancy=0.2))
        report.add(collect(descriptor, calib, occupancy=0.6))
        assert report.mean_occupancy() == pytest.approx(0.4)
