"""Model-wide property tests over randomized kernel descriptors.

Hypothesis generates kernels across the whole descriptor space and
checks the relations that must hold for *any* kernel - the simulator's
contract, independent of calibration values.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.calibration import default_calibration
from repro.sim.hardware import default_system
from repro.sim.kernel import (AccessPattern, InstructionMix,
                              KernelDescriptor)
from repro.sim.timing import ConfigFlags, simulate_kernel

SYSTEM = default_system()
CALIB = default_calibration()
CARVEOUT = 32 * 1024

STANDARD = ConfigFlags()
ASYNC = ConfigFlags(use_async=True)
UVM = ConfigFlags(managed=True)
UVM_PREFETCH = ConfigFlags(managed=True, prefetched=True)


@st.composite
def descriptors(draw):
    tile_bytes = draw(st.sampled_from([512, 2048, 8192, 16384]))
    return KernelDescriptor(
        name="hyp",
        blocks=draw(st.integers(1, 8192)),
        threads_per_block=draw(st.sampled_from([32, 64, 128, 256, 1024])),
        tiles_per_block=draw(st.integers(1, 256)),
        tile_bytes=tile_bytes,
        compute_cycles_per_tile=draw(st.floats(0.0, 1e5)),
        access_pattern=draw(st.sampled_from(list(AccessPattern))),
        write_bytes=draw(st.integers(0, 1 << 28)),
        smem_static_bytes=draw(st.sampled_from([0, 256, 4096])),
        reuse=draw(st.floats(1.0, 16.0)),
        sync_overlap=draw(st.floats(0.0, 1.0)),
        insts_per_tile=InstructionMix(memory=10, fp=100, integer=20,
                                      control=5),
    )


def run(desc, flags, resident=1.0, carveout=CARVEOUT):
    return simulate_kernel(desc, flags, SYSTEM, CALIB,
                           smem_carveout_bytes=carveout,
                           resident_fraction=resident)


class TestUniversalInvariants:
    @given(descriptors())
    @settings(max_examples=80, deadline=None)
    def test_all_configs_finite_and_positive(self, desc):
        for flags in (STANDARD, ASYNC, UVM, UVM_PREFETCH):
            result = run(desc, flags,
                         resident=0.0 if flags.managed else 1.0)
            assert 0.0 < result.duration_ns < 1e15
            assert result.load_ns >= 0.0
            assert result.compute_ns >= 0.0

    @given(descriptors())
    @settings(max_examples=60, deadline=None)
    def test_async_never_beats_the_longer_stage(self, desc):
        """Overlap is bounded: async cannot finish faster than its own
        memory stage (which is itself >= the best-case bandwidth)."""
        result = run(desc, ASYNC)
        lower_bound = min(result.load_ns, result.compute_ns)
        assert result.duration_ns >= lower_bound

    @given(descriptors())
    @settings(max_examples=60, deadline=None)
    def test_cold_uvm_never_faster_than_warm(self, desc):
        cold = run(desc, UVM, resident=0.0)
        warm = run(desc, UVM, resident=1.0)
        assert cold.duration_ns >= warm.duration_ns - 1e-6
        assert cold.demand_migrated_bytes >= warm.demand_migrated_bytes

    @given(descriptors())
    @settings(max_examples=60, deadline=None)
    def test_warm_uvm_never_faster_than_explicit(self, desc):
        """Managed memory always pays at least the page-walk tax."""
        explicit = run(desc, STANDARD)
        warm = run(desc, UVM, resident=1.0)
        assert warm.duration_ns >= explicit.duration_ns * 0.999

    @given(descriptors())
    @settings(max_examples=60, deadline=None)
    def test_prefetched_never_slower_than_cold_demand(self, desc):
        cold = run(desc, UVM, resident=0.0)
        prefetched = run(desc, UVM_PREFETCH, resident=1.0)
        assert prefetched.duration_ns <= cold.duration_ns + 1e-6

    @given(descriptors())
    @settings(max_examples=60, deadline=None)
    def test_counters_consistent_across_configs(self, desc):
        """FP work is config-invariant; async may only add instructions
        to integer/control and trim memory."""
        base = run(desc, STANDARD).counters.instructions
        with_async = run(desc, ASYNC).counters.instructions
        assert with_async.fp == base.fp
        assert with_async.integer >= base.integer
        assert with_async.control >= base.control
        assert with_async.memory <= base.memory

    @given(descriptors(), st.sampled_from([2, 8, 32, 64, 128]))
    @settings(max_examples=60, deadline=None)
    def test_carveout_never_breaks_the_model(self, desc, carveout_kb):
        for flags in (STANDARD, ASYNC, UVM_PREFETCH):
            result = run(desc, flags,
                         resident=1.0, carveout=carveout_kb * 1024)
            assert result.duration_ns > 0
            assert 0.0 <= result.counters.l1.load <= 1.0

    @given(descriptors())
    @settings(max_examples=40, deadline=None)
    def test_determinism_across_repeated_calls(self, desc):
        first = run(desc, ASYNC)
        second = run(desc, ASYNC)
        assert first.duration_ns == second.duration_ns
        assert first.counters.instructions.total == \
            second.counters.instructions.total
