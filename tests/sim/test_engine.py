"""Discrete-event engine tests."""

import pytest

from repro.sim.engine import (AllOf, Environment, Event, Resource,
                              SimulationError, Timeout)


class TestEvent:
    def test_succeed_sets_value(self, env):
        event = env.event("e")
        event.succeed(42)
        env.run()
        assert event.processed
        assert event.value == 42

    def test_double_succeed_rejected(self, env):
        event = env.event("e")
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_succeed_with_delay_fires_later(self, env):
        event = env.event("e")
        seen = []
        event.callbacks.append(lambda e: seen.append(env.now))
        event.succeed(delay=50.0)
        env.run()
        assert seen == [50.0]

    def test_untriggered_event_never_fires(self, env):
        event = env.event("e")
        env.run()
        assert not event.processed


class TestTimeout:
    def test_advances_clock(self, env):
        env.timeout(100.0)
        assert env.run() == 100.0

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            Timeout(env, -1.0)

    def test_carries_value(self, env):
        timeout = env.timeout(5.0, value="done")
        env.run()
        assert timeout.value == "done"

    def test_ordering_is_fifo_at_same_time(self, env):
        order = []
        for tag in ("a", "b", "c"):
            env.timeout(10.0).callbacks.append(
                lambda e, tag=tag: order.append(tag))
        env.run()
        assert order == ["a", "b", "c"]


class TestProcess:
    def test_process_runs_to_completion(self, env):
        def worker():
            yield env.timeout(10.0)
            yield env.timeout(5.0)
            return "finished"

        result = env.run_process(worker())
        assert result == "finished"
        assert env.now == 15.0

    def test_process_receives_event_values(self, env):
        def worker():
            value = yield env.timeout(1.0, value=7)
            return value * 2

        assert env.run_process(worker()) == 14

    def test_process_yielding_non_event_raises(self, env):
        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_process_waits_on_already_processed_event(self, env):
        event = env.event("e")
        event.succeed("early")

        def late():
            yield env.timeout(10.0)
            value = yield event
            return value

        assert env.run_process(late()) == "early"

    def test_yield_from_composes(self, env):
        def inner():
            yield env.timeout(3.0)
            return 5

        def outer():
            value = yield from inner()
            yield env.timeout(2.0)
            return value

        assert env.run_process(outer()) == 5
        assert env.now == 5.0

    def test_deadlock_detected(self, env):
        def stuck():
            yield env.event("never")

        with pytest.raises(SimulationError, match="deadlock"):
            env.run_process(stuck())

    def test_two_processes_interleave(self, env):
        log = []

        def worker(name, delay):
            yield env.timeout(delay)
            log.append((name, env.now))

        env.process(worker("slow", 20.0))
        env.process(worker("fast", 5.0))
        env.run()
        assert log == [("fast", 5.0), ("slow", 20.0)]


class TestAllOf:
    def test_waits_for_all(self, env):
        timeouts = [env.timeout(t) for t in (5.0, 15.0, 10.0)]

        def waiter():
            yield AllOf(env, timeouts)
            return env.now

        assert env.run_process(waiter()) == 15.0

    def test_empty_fires_immediately(self, env):
        def waiter():
            yield AllOf(env, [])
            return env.now

        assert env.run_process(waiter()) == 0.0


class TestResource:
    def test_capacity_enforced(self, env):
        resource = Resource(env, capacity=1)
        finish_times = []

        def worker():
            yield from resource.use(10.0)
            finish_times.append(env.now)

        env.process(worker())
        env.process(worker())
        env.run()
        assert finish_times == [10.0, 20.0]

    def test_two_slots_run_concurrently(self, env):
        resource = Resource(env, capacity=2)
        finish_times = []

        def worker():
            yield from resource.use(10.0)
            finish_times.append(env.now)

        for _ in range(3):
            env.process(worker())
        env.run()
        assert finish_times == [10.0, 10.0, 20.0]

    def test_release_idle_raises(self, env):
        resource = Resource(env, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_zero_capacity_rejected(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_busy_time_accounting(self, env):
        resource = Resource(env, capacity=2)

        def worker(delay):
            yield from resource.use(delay)

        env.process(worker(10.0))
        env.process(worker(30.0))
        env.run()
        assert resource.busy_time() == pytest.approx(40.0)

    def test_fifo_grant_order(self, env):
        resource = Resource(env, capacity=1)
        order = []

        def worker(tag):
            yield resource.request()
            order.append(tag)
            yield env.timeout(1.0)
            resource.release()

        for tag in ("first", "second", "third"):
            env.process(worker(tag))
        env.run()
        assert order == ["first", "second", "third"]


class TestRunUntil:
    def test_run_until_stops_clock(self, env):
        env.timeout(100.0)
        assert env.run(until=40.0) == 40.0

    def test_run_empty_heap_returns_now(self, env):
        assert env.run() == 0.0
