"""Kernel descriptor tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import AccessPattern, InstructionMix, KernelDescriptor


def make_descriptor(**overrides):
    base = dict(
        name="k",
        blocks=128,
        threads_per_block=256,
        tiles_per_block=16,
        tile_bytes=2048,
        compute_cycles_per_tile=100.0,
        access_pattern=AccessPattern.SEQUENTIAL,
        write_bytes=1024,
    )
    base.update(overrides)
    return KernelDescriptor(**base)


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("blocks", 0),
        ("threads_per_block", 0),
        ("threads_per_block", 2048),
        ("tiles_per_block", 0),
        ("tile_bytes", 0),
        ("compute_cycles_per_tile", -1.0),
        ("write_bytes", -1),
        ("reuse", 0.5),
        ("touched_fraction", 0.0),
        ("touched_fraction", 1.5),
        ("sync_overlap", -0.1),
        ("sync_overlap", 1.1),
        ("l1_load_miss", 1.5),
        ("prefetch_accuracy", -0.2),
        ("bandwidth_efficiency", 0.0),
        ("bandwidth_efficiency", 1.2),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            make_descriptor(**{field: value})

    def test_valid_descriptor_builds(self):
        descriptor = make_descriptor()
        assert descriptor.name == "k"


class TestDerived:
    def test_load_bytes(self):
        descriptor = make_descriptor()
        assert descriptor.load_bytes == 128 * 16 * 2048

    def test_total_tiles_and_compute(self):
        descriptor = make_descriptor()
        assert descriptor.total_tiles == 2048
        assert descriptor.compute_cycles == pytest.approx(2048 * 100.0)

    def test_footprint_defaults_to_unique_bytes(self):
        descriptor = make_descriptor(reuse=4.0)
        assert descriptor.footprint_bytes == pytest.approx(
            descriptor.load_bytes / 4.0)

    def test_footprint_override(self):
        descriptor = make_descriptor(data_footprint_bytes=12345)
        assert descriptor.footprint_bytes == 12345

    def test_write_pattern_defaults_to_access_pattern(self):
        descriptor = make_descriptor(access_pattern=AccessPattern.RANDOM)
        assert descriptor.effective_write_pattern is AccessPattern.RANDOM
        explicit = make_descriptor(write_pattern=AccessPattern.STRIDED)
        assert explicit.effective_write_pattern is AccessPattern.STRIDED

    def test_async_copies_default_strip_mines_tile(self):
        descriptor = make_descriptor(tile_bytes=16 * 256 * 4)
        # 16 bytes per copy per thread: 4 copies per thread strip.
        assert descriptor.async_copies() == 4

    def test_async_copies_override(self):
        assert make_descriptor(async_copies_per_tile=7).async_copies() == 7

    def test_base_instructions_scale_with_tiles(self):
        mix = InstructionMix(memory=10, fp=20, integer=5, control=2)
        descriptor = make_descriptor(insts_per_tile=mix)
        total = descriptor.base_instructions()
        assert total.fp == pytest.approx(20 * descriptor.total_tiles)
        assert total.total == pytest.approx(37 * descriptor.total_tiles)

    @pytest.mark.parametrize("pattern,friendly", [
        (AccessPattern.SEQUENTIAL, True),
        (AccessPattern.STRIDED, True),
        (AccessPattern.RANDOM, False),
        (AccessPattern.IRREGULAR, False),
    ])
    def test_prefetch_friendliness(self, pattern, friendly):
        assert pattern.prefetch_friendly is friendly

    def test_derived_prefetch_accuracy_ordering(self):
        accuracies = {
            pattern: make_descriptor(
                access_pattern=pattern).derived_prefetch_accuracy()
            for pattern in AccessPattern
        }
        assert accuracies[AccessPattern.SEQUENTIAL] > \
            accuracies[AccessPattern.STRIDED] > \
            accuracies[AccessPattern.RANDOM] > \
            accuracies[AccessPattern.IRREGULAR]


class TestInstructionMix:
    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            InstructionMix(memory=-1)

    def test_scaled_and_plus(self):
        mix = InstructionMix(memory=1, fp=2, integer=3, control=4)
        doubled = mix.scaled(2.0)
        assert doubled.control == 8
        combined = mix.plus(doubled)
        assert combined.total == pytest.approx(30)


class TestWithGeometry:
    @given(blocks=st.sampled_from([16, 64, 256, 1024, 4096]),
           threads=st.sampled_from([32, 128, 256, 1024]))
    @settings(max_examples=25, deadline=None)
    def test_total_traffic_preserved(self, blocks, threads):
        base = make_descriptor(blocks=4096, tiles_per_block=64)
        regeared = base.with_geometry(blocks=blocks,
                                      threads_per_block=threads)
        assert regeared.blocks == blocks
        assert regeared.threads_per_block == threads
        # Total bytes are conserved *exactly*, not just approximately.
        assert regeared.load_bytes == base.load_bytes

    def test_awkward_blocks_conserved_exactly(self):
        # 4096 tiles x 64 bytes onto 7 blocks: 7 does not divide the
        # tile count, but it does divide the byte total, so an exact
        # (if uneven-looking) re-tiling exists.
        base = make_descriptor(blocks=4096, tiles_per_block=1,
                               tile_bytes=448)
        regeared = base.with_geometry(blocks=7)
        assert regeared.load_bytes == base.load_bytes
        assert regeared.blocks * regeared.tiles_per_block \
            * regeared.tile_bytes == base.load_bytes

    def test_indivisible_blocks_refused(self):
        # 3 blocks cannot carry a power-of-two byte total evenly:
        # refusing beats silently drifting the modelled traffic.
        base = make_descriptor(blocks=4096, tiles_per_block=64)
        assert base.load_bytes % 3 != 0
        with pytest.raises(ValueError, match="without changing total"):
            base.with_geometry(blocks=3)

    def test_compute_density_preserved(self):
        base = make_descriptor()
        regeared = base.with_geometry(blocks=16)
        base_density = base.compute_cycles / base.load_bytes
        new_density = regeared.compute_cycles / regeared.load_bytes
        assert new_density == pytest.approx(base_density, rel=1e-6)

    def test_invalid_blocks_rejected(self):
        with pytest.raises(ValueError):
            make_descriptor().with_geometry(blocks=0)
