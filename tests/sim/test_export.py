"""Chrome-trace export tests."""

import json

from repro.sim.export import export_chrome_trace, timeline_to_trace_events
from repro.sim.trace import Timeline


def make_timeline():
    timeline = Timeline()
    timeline.record("cudaMalloc:a", "allocation", 0.0, 1000.0)
    timeline.record("cudaMemcpy H2D:a", "memcpy", 1000.0, 5000.0)
    timeline.record("kernel:k", "gpu_kernel", 5000.0, 9000.0)
    return timeline


class TestTraceEvents:
    def test_metadata_rows_present(self):
        events = timeline_to_trace_events(make_timeline())
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"CPU (driver)", "PCIe copy engines", "GPU SMs"} <= names

    def test_durations_in_microseconds(self):
        events = timeline_to_trace_events(make_timeline())
        kernel = next(e for e in events if e.get("cat") == "gpu_kernel")
        assert kernel["ts"] == 5.0
        assert kernel["dur"] == 4.0
        assert kernel["ph"] == "X"

    def test_categories_map_to_distinct_tracks(self):
        events = timeline_to_trace_events(make_timeline())
        pids = {e.get("cat"): e["pid"] for e in events if "cat" in e}
        assert len(set(pids.values())) == 3


class TestExport:
    def test_writes_valid_json(self, tmp_path):
        path = export_chrome_trace(make_timeline(), tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) >= 3

    def test_real_run_exports(self, tmp_path, system, calib):
        import numpy as np
        from repro.core.configs import TransferMode
        from repro.core.execution import _managed_process
        from repro.sim.runtime import CudaRuntime
        from repro.workloads.registry import get_workload
        from repro.workloads.sizes import SizeClass

        program = get_workload("saxpy").program(SizeClass.SMALL)
        rt = CudaRuntime(system, calib, np.random.default_rng(0),
                         footprint_bytes=program.footprint_bytes)
        rt.run(_managed_process(rt, program, TransferMode.UVM_PREFETCH))
        path = export_chrome_trace(rt.timeline, tmp_path / "run.json")
        payload = json.loads(path.read_text())
        kinds = {e.get("cat") for e in payload["traceEvents"]}
        assert "gpu_kernel" in kinds
        assert "memcpy" in kinds
