"""SM occupancy / bandwidth model tests."""

import pytest

from repro.sim.hardware import GpuSpec
from repro.sim.kernel import AccessPattern, KernelDescriptor
from repro.sim.sm import (ASYNC_MLP_FACTOR, Occupancy, occupancy_for,
                          pipeline_fits, smem_per_block)

from .test_kernel import make_descriptor

CARVEOUT = 32 * 1024


class TestSmemPerBlock:
    def test_sync_needs_one_buffer(self):
        descriptor = make_descriptor(tile_bytes=2048, smem_static_bytes=512)
        assert smem_per_block(descriptor, use_async=False) == 2048 + 512

    def test_async_needs_double_buffer(self):
        descriptor = make_descriptor(tile_bytes=2048, smem_static_bytes=512)
        assert smem_per_block(descriptor, use_async=True) == 4096 + 512


class TestOccupancy:
    def test_thread_limit(self):
        gpu = GpuSpec()
        descriptor = make_descriptor(threads_per_block=1024, tile_bytes=64)
        occupancy = occupancy_for(descriptor, gpu, CARVEOUT, use_async=False)
        assert occupancy.blocks_per_sm == 2  # 2048 / 1024
        assert occupancy.limiter == "threads"

    def test_shared_memory_limit(self):
        gpu = GpuSpec()
        descriptor = make_descriptor(threads_per_block=64,
                                     tile_bytes=16 * 1024,
                                     registers_per_thread=16)
        occupancy = occupancy_for(descriptor, gpu, CARVEOUT, use_async=False)
        assert occupancy.limiter == "shared_memory"
        assert occupancy.blocks_per_sm == 2

    def test_register_limit(self):
        gpu = GpuSpec()
        descriptor = make_descriptor(threads_per_block=256,
                                     registers_per_thread=64,
                                     tile_bytes=64)
        occupancy = occupancy_for(descriptor, gpu, CARVEOUT, use_async=False)
        assert occupancy.limiter == "registers"
        assert occupancy.blocks_per_sm == 4  # 256KB / (64*256*4)

    def test_oversized_tile_still_schedules_one_block(self):
        gpu = GpuSpec()
        descriptor = make_descriptor(tile_bytes=200 * 1024)
        occupancy = occupancy_for(descriptor, gpu, CARVEOUT, use_async=False)
        assert occupancy.blocks_per_sm == 1

    def test_blocks_spread_across_sms(self):
        """The scheduler never packs a small grid onto few SMs."""
        gpu = GpuSpec()
        descriptor = make_descriptor(blocks=64, threads_per_block=128,
                                     tile_bytes=64)
        occupancy = occupancy_for(descriptor, gpu, CARVEOUT, use_async=False)
        assert occupancy.active_sms == 64
        assert occupancy.resident_threads_per_sm == 128

    def test_large_grid_uses_all_sms(self):
        gpu = GpuSpec()
        descriptor = make_descriptor(blocks=4096)
        occupancy = occupancy_for(descriptor, gpu, CARVEOUT, use_async=False)
        assert occupancy.active_sms == gpu.sm_count

    def test_occupancy_fraction_bounded(self):
        gpu = GpuSpec()
        descriptor = make_descriptor(blocks=8192, threads_per_block=1024,
                                     tile_bytes=64)
        occupancy = occupancy_for(descriptor, gpu, CARVEOUT, use_async=False)
        assert 0.0 < occupancy.occupancy_fraction(gpu) <= 1.0


class TestComputeThroughput:
    def test_full_at_128_threads(self):
        occupancy = Occupancy(blocks_per_sm=1, active_sms=64,
                              resident_threads_per_sm=128, limiter="threads")
        assert occupancy.compute_throughput() == 1.0

    def test_quarter_at_32_threads(self):
        occupancy = Occupancy(blocks_per_sm=1, active_sms=64,
                              resident_threads_per_sm=32, limiter="threads")
        assert occupancy.compute_throughput() == 0.25


class TestMemoryBandwidth:
    def _occupancy(self, threads, sms=108):
        return Occupancy(blocks_per_sm=1, active_sms=sms,
                         resident_threads_per_sm=threads, limiter="threads")

    def test_thread_limited_scales_with_threads(self):
        gpu = GpuSpec()
        # Generous roofline so the thread MLP limit is what binds.
        low = self._occupancy(32, sms=64).memory_bandwidth(gpu, 0.2)
        high = self._occupancy(128, sms=64).memory_bandwidth(gpu, 0.2)
        assert high == pytest.approx(4 * low)

    def test_roofline_caps_bandwidth(self):
        gpu = GpuSpec()
        bandwidth = self._occupancy(2048).memory_bandwidth(gpu, 0.06)
        assert bandwidth == pytest.approx(gpu.hbm_bandwidth * 0.06)

    def test_async_mlp_raises_thread_limited_bandwidth(self):
        gpu = GpuSpec()
        occupancy = self._occupancy(32, sms=64)
        sync = occupancy.memory_bandwidth(gpu, 0.06, use_async=False)
        async_ = occupancy.memory_bandwidth(gpu, 0.06, use_async=True)
        assert async_ == pytest.approx(min(gpu.hbm_bandwidth * 0.06,
                                           sync * ASYNC_MLP_FACTOR))

    def test_tuned_kernels_not_thread_limited(self):
        gpu = GpuSpec()
        occupancy = self._occupancy(32, sms=16)
        bandwidth = occupancy.memory_bandwidth(gpu, 0.65,
                                               thread_limited=False)
        assert bandwidth == pytest.approx(gpu.hbm_bandwidth * 0.65)


class TestPipelineFits:
    def test_fits_when_double_buffer_in_carveout(self):
        gpu = GpuSpec()
        descriptor = make_descriptor(tile_bytes=2048, smem_static_bytes=0)
        assert pipeline_fits(descriptor, gpu, 4096)
        assert not pipeline_fits(descriptor, gpu, 4095)

    def test_static_smem_counts_against_budget(self):
        gpu = GpuSpec()
        descriptor = make_descriptor(tile_bytes=2048, smem_static_bytes=512)
        assert not pipeline_fits(descriptor, gpu, 4096)
