"""Property proofs for the vector engine (:mod:`repro.sim.vecgrid`).

Three contracts, each pinned with Hypothesis:

* **Element-wise batching**: :func:`simulate_phase_grid` evaluates many
  kernel-phase cells as one array program; every lane must equal the
  scalar :func:`repro.sim.timing.simulate_kernel` *bitwise* over
  randomized geometry / flags / carveout / miss-ratio / residency axes
  (and :func:`prewarm_phase_memo` must seed exactly those values).

* **Classifier soundness**: any program the analytic path completes
  provably had no cross-stream contention — never more in-flight link
  streams than DMA copy engines, and every migration train settled at
  a strictly ordered end time.  Ambiguity (ties, queueing) must raise
  :class:`ContentionDetected`, never guess.

* **Compiled replay**: :func:`repro.core.execution.compile_program` +
  :func:`replay_result` — the whole-grid batching the executor uses —
  must be bit-identical to the fast engine for the same seed stream.
"""

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.configs import TransferMode
from repro.core.execution import (compile_program, execute_program,
                                  iter_phase_cells, replay_result)
from repro.sim.calibration import default_calibration
from repro.sim.hardware import default_system
from repro.sim.kernel import AccessPattern, KernelDescriptor
from repro.sim.phasecache import PhaseMemo
from repro.sim.program import simple_program
from repro.sim.timing import ConfigFlags, simulate_kernel
from repro.sim.vecgrid import (AnalyticRuntime, ContentionDetected,
                               prewarm_phase_memo, simulate_phase_grid)

SYSTEM = default_system()
CALIB = default_calibration()
MODES = list(TransferMode)
PATTERNS = list(AccessPattern)
CARVEOUTS = [2048, 4096, 16384, 32768, 65536, 131072,
             SYSTEM.gpu.default_shared_mem_bytes]


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def descriptors(draw):
    return KernelDescriptor(
        name="cell",
        blocks=draw(st.integers(min_value=1, max_value=8192)),
        threads_per_block=draw(st.sampled_from([32, 64, 128, 256, 512,
                                                1024])),
        tiles_per_block=draw(st.integers(min_value=1, max_value=64)),
        tile_bytes=draw(st.sampled_from([1024, 4096, 16384, 49152])),
        compute_cycles_per_tile=draw(st.floats(min_value=1.0,
                                               max_value=1e6)),
        access_pattern=draw(st.sampled_from(PATTERNS)),
        write_bytes=draw(st.integers(min_value=0, max_value=1 << 30)),
        reuse=draw(st.floats(min_value=1.0, max_value=64.0)),
        touched_fraction=draw(st.floats(min_value=0.01, max_value=1.0)),
        # The Fig. 10 axis: explicit L1 miss-ratio overrides.
        l1_load_miss=draw(st.one_of(
            st.none(), st.floats(min_value=0.0, max_value=1.0))),
        l1_store_miss=draw(st.one_of(
            st.none(), st.floats(min_value=0.0, max_value=1.0))),
        registers_per_thread=draw(st.sampled_from([16, 32, 64, 128])),
        smem_static_bytes=draw(st.sampled_from([0, 1024, 8192])),
        sync_overlap=draw(st.floats(min_value=0.0, max_value=1.0)),
    )


@st.composite
def flag_sets(draw):
    managed = draw(st.booleans())
    return ConfigFlags(
        use_async=draw(st.booleans()),
        managed=managed,
        prefetched=draw(st.booleans()) if managed else False,
    )


@st.composite
def cells(draw):
    return (draw(descriptors()), draw(flag_sets()),
            draw(st.sampled_from(CARVEOUTS)),
            draw(st.floats(min_value=0.0, max_value=1.0)))


@st.composite
def programs(draw):
    desc = draw(descriptors())
    in_bytes = draw(st.integers(min_value=1 << 12, max_value=1 << 36))
    out_bytes = draw(st.integers(min_value=1 << 12, max_value=1 << 32))
    iterations = draw(st.integers(min_value=1, max_value=100))
    return simple_program("fuzz", desc, in_bytes, out_bytes,
                          iterations=iterations)


# ----------------------------------------------------------------------
# Element-wise equality of the batched closed forms
# ----------------------------------------------------------------------
@given(batch=st.lists(cells(), min_size=1, max_size=8))
@settings(max_examples=40, deadline=None)
def test_grid_matches_scalar_elementwise(batch):
    grid = simulate_phase_grid(batch, SYSTEM, CALIB)
    assert len(grid) == len(batch)
    for cell, vectorized in zip(batch, grid):
        desc, flags, carveout, residency = cell
        scalar = simulate_kernel(desc, flags, SYSTEM, CALIB,
                                 smem_carveout_bytes=carveout,
                                 resident_fraction=residency)
        # Full dataclass equality: every timing stage, fault batch
        # count, migrated byte and counter — bitwise, no tolerance.
        assert dataclasses.asdict(vectorized) == dataclasses.asdict(scalar)


@given(batch=st.lists(cells(), min_size=1, max_size=6))
@settings(max_examples=20, deadline=None)
def test_prewarm_seeds_bitwise_scalar_values(batch):
    memo = PhaseMemo(SYSTEM, CALIB)
    evaluated = prewarm_phase_memo(memo, batch)
    assert evaluated == len(set(batch))
    assert memo.seeded == evaluated
    for desc, flags, carveout, residency in batch:
        served = memo.simulate(desc, flags, SYSTEM, CALIB,
                               smem_carveout_bytes=carveout,
                               resident_fraction=residency)
        scalar = simulate_kernel(desc, flags, SYSTEM, CALIB,
                                 smem_carveout_bytes=carveout,
                                 resident_fraction=residency)
        assert served == scalar
    # Every lookup above was a hit: the batch seeded the whole set.
    assert memo.misses == 0


def test_phase_cells_cover_real_sweeps():
    """iter_phase_cells + one batched grid = zero scalar misses for a
    real workload under every mode (the executor's prewarm contract)."""
    from repro.workloads.registry import get_workload
    from repro.workloads.sizes import SizeClass
    program = get_workload("srad").program(SizeClass.LARGE)
    for mode in MODES:
        memo = PhaseMemo(SYSTEM, CALIB)
        prewarm_phase_memo(
            memo, iter_phase_cells(program, mode, None, SYSTEM))
        execute_program(program, mode, seed=3, engine="fast",
                        phase_memo=memo)
        assert memo.misses == 0, mode


# ----------------------------------------------------------------------
# Contention-classifier soundness
# ----------------------------------------------------------------------
class AuditingRuntime(AnalyticRuntime):
    """Analytic runtime that records what the classifier admitted."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.max_streams = 0

    def _require_free_engine(self, what):
        super()._require_free_engine(what)
        # This stream was admitted next to the pending trains.
        self.max_streams = max(self.max_streams, len(self._pending) + 1)


@given(program=programs(), mode=st.sampled_from(MODES),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_classifier_soundness_no_cross_stream_overlap(program, mode, seed):
    """Any run the analytic path *completes* provably never queued: the
    link never carried more concurrent streams than it has DMA copy
    engines, and no ambiguity survived (ties raise by construction)."""
    rt = AuditingRuntime(SYSTEM, CALIB, np.random.default_rng(seed),
                         footprint_bytes=program.footprint_bytes)
    from repro.core.execution import _explicit_process, _managed_process
    process = (_managed_process(rt, program, mode) if mode.managed
               else _explicit_process(rt, program, mode))
    try:
        rt.run(process)
    except ContentionDetected:
        assume(False)  # routed to the event engine; out of scope here
    assert rt.max_streams <= SYSTEM.link.copy_engines
    # Whatever the classifier settled is strictly ordered in time:
    # timeline events never run backwards and the clock is monotone.
    starts = [event.start_ns for event in rt.timeline.events]
    assert starts == sorted(starts)
    assert not rt._pending  # everything drained in completion order


def test_equal_train_ends_are_contention():
    rt = AnalyticRuntime(SYSTEM, CALIB, np.random.default_rng(0))
    rt._pending = [("uvm migrate:a", 0.0, 100.0),
                   ("uvm migrate:b", 50.0, 100.0)]
    with pytest.raises(ContentionDetected):
        rt._settle_through(math.inf)


def test_train_ending_on_boundary_is_contention():
    rt = AnalyticRuntime(SYSTEM, CALIB, np.random.default_rng(0))
    rt._pending = [("uvm migrate:a", 0.0, 100.0)]
    with pytest.raises(ContentionDetected):
        rt._settle_through(100.0)


def test_copy_engine_queueing_is_contention_and_falls_back():
    """With a single DMA engine, a UVM program that overlaps a demand
    train with the next transfer must bail analytically — and
    execute_program must then fall back bit-identically."""
    from repro.sim.vecgrid import vec_stats
    from repro.workloads.registry import get_workload
    from repro.workloads.sizes import SizeClass
    starved = dataclasses.replace(
        SYSTEM, link=dataclasses.replace(SYSTEM.link, copy_engines=1))
    program = get_workload("saxpy").program(SizeClass.LARGE)
    rt = AnalyticRuntime(starved, CALIB, np.random.default_rng(7),
                         footprint_bytes=program.footprint_bytes)
    from repro.core.execution import _managed_process
    with pytest.raises(ContentionDetected):
        rt.run(_managed_process(rt, program, TransferMode.UVM))

    stats = vec_stats()
    fallbacks_before = stats.fallbacks
    vector = execute_program(program, TransferMode.UVM, system=starved,
                             seed=7, engine="vector")
    reference = execute_program(program, TransferMode.UVM, system=starved,
                                seed=7, engine="reference")
    assert stats.fallbacks == fallbacks_before + 1
    assert vector == reference


# ----------------------------------------------------------------------
# Compiled whole-grid replay
# ----------------------------------------------------------------------
@given(program=programs(), mode=st.sampled_from(MODES),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_compiled_replay_bit_identical_to_fast(program, mode, seed):
    """compile once + replay per seed == the fast engine, bitwise."""
    compiled = compile_program(program, mode, SYSTEM, CALIB)
    rng = np.random.default_rng(seed)
    try:
        replayed = replay_result(compiled, mode, rng, SYSTEM, CALIB,
                                 size_label="", seed=seed)
    except ContentionDetected:
        assume(False)
    fast = execute_program(program, mode, seed=seed, engine="fast")
    assert dataclasses.asdict(replayed) == dataclasses.asdict(fast)


def test_compiled_program_is_reusable_across_seeds():
    """One compile serves many seeds; counters/occupancy are shared
    (deterministic per structure) while timings vary per seed."""
    from repro.workloads.registry import get_workload
    from repro.workloads.sizes import SizeClass
    program = get_workload("gemm").program(SizeClass.LARGE)
    mode = TransferMode.UVM_PREFETCH
    compiled = compile_program(program, mode, SYSTEM, CALIB)
    results = [replay_result(compiled, mode, np.random.default_rng(seed),
                             SYSTEM, CALIB, size_label="", seed=seed)
               for seed in range(5)]
    for seed, result in enumerate(results):
        expected = execute_program(program, mode, seed=seed, engine="fast")
        assert result == expected
        assert result.counters is compiled.counters  # shared, immutable
    assert len({result.wall_ns for result in results}) == len(results)
