"""Calibration constant sanity tests."""

import pytest

from repro.sim.calibration import (AllocationCosts, Calibration, KernelCosts,
                                   NoiseModel, TransferCosts,
                                   default_calibration)
from repro.sim.kernel import AccessPattern


class TestDefaults:
    def test_all_sections_present(self):
        calib = default_calibration()
        assert isinstance(calib.alloc, AllocationCosts)
        assert isinstance(calib.kernel, KernelCosts)
        assert isinstance(calib.transfer, TransferCosts)
        assert isinstance(calib.noise, NoiseModel)

    def test_pattern_efficiency_covers_all_patterns(self):
        table = default_calibration().kernel.pattern_efficiency
        assert set(table) == set(AccessPattern)
        for value in table.values():
            assert 0.0 < value < 1.0

    def test_coalescing_quality_ordering(self):
        table = default_calibration().kernel.pattern_efficiency
        assert table[AccessPattern.SEQUENTIAL] > \
            table[AccessPattern.STRIDED] > \
            table[AccessPattern.IRREGULAR] > \
            table[AccessPattern.RANDOM]

    def test_managed_allocation_costs_more_per_byte(self):
        alloc = default_calibration().alloc
        assert alloc.managed_per_byte_ns > alloc.device_per_byte_ns

    def test_demand_multiplier_exceeds_one(self):
        kernel = default_calibration().kernel
        assert kernel.uvm_demand_kernel_multiplier > 1.0
        assert kernel.prefetch_l2_gain > 1.0
        assert kernel.async_bandwidth_gain >= 1.0

    def test_transfer_penalties_are_fractions(self):
        transfer = default_calibration().transfer
        assert 0.0 < transfer.pageable_factor <= 1.0
        assert 0.0 < transfer.d2h_bandwidth_factor <= 1.0

    def test_noise_sigmas_are_small(self):
        noise = default_calibration().noise
        for sigma in (noise.alloc_sigma, noise.kernel_sigma,
                      noise.memcpy_sigma):
            assert 0.0 < sigma < 0.2

    def test_calibration_is_frozen(self):
        with pytest.raises(AttributeError):
            default_calibration().kernel.launch_ns = 0
