"""PCIe link model tests."""

import pytest

from repro.sim.engine import Environment
from repro.sim.pcie import PcieLink, TransferKind


@pytest.fixture
def link(system, calib):
    return PcieLink(Environment(), system, calib)


class TestBandwidths:
    def test_explicit_copies_pay_pageable_penalty(self, link, system):
        assert link.effective_bandwidth(TransferKind.H2D) < \
            system.link.bandwidth

    def test_d2h_slower_than_h2d(self, link):
        assert link.effective_bandwidth(TransferKind.D2H) < \
            link.effective_bandwidth(TransferKind.H2D)

    def test_prefetch_is_fastest_path(self, link):
        prefetch = link.effective_bandwidth(TransferKind.PREFETCH)
        for kind in (TransferKind.H2D, TransferKind.D2H,
                     TransferKind.MIGRATE_H2D):
            assert prefetch > link.effective_bandwidth(kind)

    def test_migration_slower_than_prefetch(self, link):
        assert link.effective_bandwidth(TransferKind.MIGRATE_H2D) < \
            link.effective_bandwidth(TransferKind.PREFETCH)


class TestDurations:
    def test_zero_bytes_is_free(self, link):
        assert link.duration_ns(TransferKind.H2D, 0) == 0.0

    def test_negative_bytes_rejected(self, link):
        with pytest.raises(ValueError):
            link.duration_ns(TransferKind.H2D, -1)

    def test_duration_scales_linearly(self, link):
        one = link.duration_ns(TransferKind.H2D, 1 << 30)
        two = link.duration_ns(TransferKind.H2D, 2 << 30)
        fixed = link.system.link.latency_ns + link.calib.transfer.memcpy_call_ns
        assert two - fixed == pytest.approx(2 * (one - fixed), rel=1e-9)

    def test_host_multiplier_stretches_wire_time(self, link):
        base = link.duration_ns(TransferKind.H2D, 1 << 30)
        stretched = link.duration_ns(TransferKind.H2D, 1 << 30,
                                     host_multiplier=2.0)
        assert stretched > 1.8 * base

    def test_migration_has_no_api_call_cost(self, link):
        explicit = link.duration_ns(TransferKind.H2D, 1)
        migration = link.duration_ns(TransferKind.MIGRATE_H2D, 1)
        assert migration < explicit


class TestTransferProcess:
    def test_transfer_advances_clock(self, system, calib):
        env = Environment()
        link = PcieLink(env, system, calib)
        timing = env.run_process(link.transfer(TransferKind.H2D, 1 << 30))
        assert env.now == pytest.approx(timing.duration_ns)
        assert timing.bytes == 1 << 30

    def test_copy_engines_limit_concurrency(self, system, calib):
        env = Environment()
        link = PcieLink(env, system, calib)
        done = []

        def copy():
            yield from link.transfer(TransferKind.H2D, 1 << 30)
            done.append(env.now)

        engines = system.link.copy_engines
        for _ in range(engines + 1):
            env.process(copy())
        env.run()
        single = link.duration_ns(TransferKind.H2D, 1 << 30)
        # First `engines` finish together; the extra one queues.
        assert done[engines] == pytest.approx(2 * single)
