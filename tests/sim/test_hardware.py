"""Hardware specification tests (Table 1)."""

import pytest

from repro.sim.hardware import (GIB, KIB, MIB, CpuSpec, GpuSpec, LinkSpec,
                                SystemSpec, UvmSpec, default_system)


class TestCpuSpec:
    def test_table1_defaults(self):
        cpu = CpuSpec()
        assert cpu.cores == 64
        assert "EPYC 7742" in cpu.name
        assert cpu.dram_channels == 16
        assert cpu.dram_chip_bytes == 64 * GIB

    def test_total_dram(self):
        assert CpuSpec().dram_total_bytes == 1024 * GIB  # 1 TB

    def test_aggregate_bandwidth(self):
        cpu = CpuSpec()
        assert cpu.dram_bandwidth == pytest.approx(16 * 25.6e9)


class TestGpuSpec:
    def test_table1_defaults(self):
        gpu = GpuSpec()
        assert gpu.sm_count == 108
        assert gpu.hbm_bytes == 40 * GIB
        assert gpu.max_shared_mem_bytes == 164 * KIB
        assert gpu.unified_l1_bytes == 192 * KIB

    def test_total_cores_is_6912(self):
        assert GpuSpec().total_cores == 6912

    def test_clock_ns(self):
        assert GpuSpec().clock_ns == pytest.approx(1.0 / 1.41)

    def test_l1_carveout_partition(self):
        gpu = GpuSpec()
        assert gpu.l1_bytes(32 * KIB) == 160 * KIB
        assert gpu.l1_bytes(0) == 192 * KIB

    def test_l1_carveout_bounds(self):
        gpu = GpuSpec()
        with pytest.raises(ValueError):
            gpu.l1_bytes(-1)
        with pytest.raises(ValueError):
            gpu.l1_bytes(gpu.max_shared_mem_bytes + 1)


class TestSystemSpec:
    def test_default_system_composition(self):
        system = default_system()
        assert isinstance(system.cpu, CpuSpec)
        assert isinstance(system.gpu, GpuSpec)
        assert isinstance(system.link, LinkSpec)
        assert isinstance(system.uvm, UvmSpec)

    def test_with_gpu_returns_modified_copy(self):
        system = default_system()
        modified = system.with_gpu(sm_count=54)
        assert modified.gpu.sm_count == 54
        assert system.gpu.sm_count == 108

    def test_with_link_and_uvm(self):
        system = default_system()
        assert system.with_link(bandwidth=1e9).link.bandwidth == 1e9
        assert system.with_uvm(fault_batch_size=1).uvm.fault_batch_size == 1

    def test_describe_mentions_table1_parts(self):
        text = default_system().describe()
        assert "A100" in text
        assert "EPYC" in text
        assert "108 SMs" in text
        assert "PCIe" in text

    def test_uvm_migration_block_is_64k(self):
        assert default_system().uvm.migration_block_bytes == 64 * KIB

    def test_specs_are_frozen(self):
        with pytest.raises(AttributeError):
            default_system().gpu.sm_count = 1

    def test_mib_gib_constants(self):
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB
