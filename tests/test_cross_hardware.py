"""Cross-hardware integration: the findings respond sensibly to the
platform, not just to the calibration defaults.

These are the what-if studies a simulator exists for: faster links,
smaller GPUs, different driver parameters.
"""

import pytest

from repro.core.configs import TransferMode
from repro.core.execution import execute_program
from repro.sim.hardware import GIB, default_system
from repro.workloads.registry import get_workload
from repro.workloads.sizes import SizeClass


@pytest.fixture(scope="module")
def program():
    return get_workload("vector_seq").program(SizeClass.SUPER)


def run(program, mode, system, seed=7):
    return execute_program(program, mode, system=system, seed=seed)


class TestLinkSpeed:
    def test_faster_link_shrinks_memcpy(self, program):
        base = default_system()
        nvlink = base.with_link(bandwidth=300e9, name="NVLink-ish")
        slow = run(program, TransferMode.STANDARD, base)
        fast = run(program, TransferMode.STANDARD, nvlink)
        assert fast.memcpy_ns < slow.memcpy_ns / 5
        # Kernels don't care about the host link.
        assert fast.kernel_ns == pytest.approx(slow.kernel_ns, rel=0.05)

    def test_uvm_prefetch_gain_shrinks_with_faster_link(self, program):
        """On an NVLink-class interconnect the transfer stage stops
        dominating, so prefetch's end-to-end win compresses - the
        paper's conclusions are PCIe-era conclusions."""
        def improvement(system):
            standard = run(program, TransferMode.STANDARD, system)
            prefetch = run(program, TransferMode.UVM_PREFETCH, system)
            return 1 - prefetch.total_ns / standard.total_ns

        pcie = improvement(default_system())
        nvlink = improvement(default_system().with_link(bandwidth=300e9))
        assert nvlink < pcie


class TestGpuScale:
    def test_fewer_sms_slow_kernels_only(self, program):
        base = default_system()
        half = base.with_gpu(sm_count=54)
        full_run = run(program, TransferMode.STANDARD, base)
        half_run = run(program, TransferMode.STANDARD, half)
        assert half_run.kernel_ns > full_run.kernel_ns
        assert half_run.memcpy_ns == pytest.approx(full_run.memcpy_ns,
                                                   rel=0.05)

    def test_smaller_hbm_triggers_oversubscription(self):
        """An iterative 8 GB working set on a 2 GB device: UVM keeps
        working but re-faults the evicted excess every pass."""
        program = get_workload("hotspot").program(SizeClass.SUPER)
        base = default_system()
        tiny_gpu = base.with_gpu(hbm_bytes=2 * GIB)
        fits = run(program, TransferMode.UVM, base)
        thrash = run(program, TransferMode.UVM, tiny_gpu)
        assert thrash.total_ns > 1.2 * fits.total_ns
        assert thrash.memcpy_ns > 2 * fits.memcpy_ns


class TestDriverParameters:
    def test_bigger_fault_batches_help_uvm(self, program):
        base = default_system()
        fine = base.with_uvm(fault_batch_size=8)
        coarse = base.with_uvm(fault_batch_size=256)
        fine_run = run(program, TransferMode.UVM, fine)
        coarse_run = run(program, TransferMode.UVM, coarse)
        assert coarse_run.kernel_ns < fine_run.kernel_ns

    def test_migration_bandwidth_moves_uvm_memcpy(self, program):
        base = default_system()
        slow = base.with_uvm(migration_bandwidth_factor=0.3)
        fast = base.with_uvm(migration_bandwidth_factor=0.95)
        slow_run = run(program, TransferMode.UVM, slow)
        fast_run = run(program, TransferMode.UVM, fast)
        assert fast_run.memcpy_ns < slow_run.memcpy_ns

    def test_findings_hold_on_80gb_a100(self, program):
        """The prefetch win is not an artifact of the 40 GB part."""
        a100_80 = default_system().with_gpu(hbm_bytes=80 * GIB,
                                            hbm_bandwidth=2039e9)
        standard = run(program, TransferMode.STANDARD, a100_80)
        uvm = run(program, TransferMode.UVM, a100_80)
        prefetch = run(program, TransferMode.UVM_PREFETCH, a100_80)
        assert prefetch.total_ns < standard.total_ns
        assert prefetch.total_ns < uvm.total_ns
