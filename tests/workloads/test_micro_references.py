"""Functional correctness of the microbenchmark algorithms.

Each reference implementation is validated against an independent
oracle (NumPy closed forms or scipy).
"""

import numpy as np
import pytest
from scipy import signal

from repro.workloads.micro import (Conv2D, Conv3D, Gemm, Gemv, Saxpy,
                                   VectorRand, VectorSeq, conv2d_reference,
                                   conv3d_reference)
from repro.workloads.micro.conv import CONV2D_WEIGHTS


class TestVectorChains:
    def test_vector_seq_matches_scalar_recurrence(self):
        result = VectorSeq().reference()
        x = result["input"].astype(np.float64)
        expected = x.copy()
        for step in range(8):
            expected = expected * 1.000001 + float(step % 3)
        np.testing.assert_allclose(result["output"], expected, rtol=1e-12)

    def test_vector_rand_is_gathered_vector_seq(self):
        result = VectorRand().reference()
        gathered = result["input"][result["indices"]]
        expected = VectorSeq.apply_chain(gathered)
        np.testing.assert_allclose(result["output"], expected, rtol=1e-12)

    def test_vector_rand_indices_are_permutation(self):
        result = VectorRand().reference()
        assert sorted(result["indices"]) == list(range(
            result["input"].size))


class TestSaxpy:
    def test_matches_formula(self):
        result = Saxpy().reference()
        expected = Saxpy.ALPHA * result["x"] + result["y"]
        np.testing.assert_allclose(result["output"], expected, rtol=1e-6)


class TestBlas:
    def test_gemv_matches_manual_dot(self):
        result = Gemv().reference()
        manual = np.array([row @ result["x"] for row in result["A"]])
        np.testing.assert_allclose(result["output"], manual, rtol=1e-5)

    def test_gemm_matches_numpy(self):
        result = Gemm().reference()
        np.testing.assert_allclose(result["output"],
                                   result["A"] @ result["B"], rtol=1e-5)

    def test_gemm_shapes(self):
        result = Gemm().reference()
        assert result["output"].shape == (result["A"].shape[0],
                                          result["B"].shape[1])


class TestConvolutions:
    def test_conv2d_matches_scipy(self):
        rng = np.random.default_rng(3)
        grid = rng.standard_normal((40, 52)).astype(np.float32)
        ours = conv2d_reference(grid)
        scipy_result = signal.convolve2d(
            grid, CONV2D_WEIGHTS[::-1, ::-1], mode="valid")
        np.testing.assert_allclose(ours, scipy_result, rtol=1e-4,
                                   atol=1e-5)

    def test_conv2d_rejects_bad_input(self):
        with pytest.raises(ValueError):
            conv2d_reference(np.zeros(10))
        with pytest.raises(ValueError):
            conv2d_reference(np.zeros((2, 2)))

    def test_conv3d_matches_scipy(self):
        rng = np.random.default_rng(4)
        grid = rng.standard_normal((12, 14, 10))
        ours = conv3d_reference(grid)
        kernel = np.full((3, 3, 3), 1.0 / 27.0)
        scipy_result = signal.convolve(grid, kernel, mode="valid")
        np.testing.assert_allclose(ours, scipy_result, rtol=1e-4,
                                   atol=1e-6)

    def test_conv3d_box_filter_preserves_constant(self):
        grid = np.full((8, 8, 8), 5.0)
        np.testing.assert_allclose(conv3d_reference(grid), 5.0, rtol=1e-6)

    def test_conv3d_rejects_bad_input(self):
        with pytest.raises(ValueError):
            conv3d_reference(np.zeros((2, 2, 2)))

    def test_workload_references_run(self):
        for workload in (Conv2D(), Conv3D()):
            result = workload.reference()
            assert result["output"].size > 0
