"""Table 3 size-class tests."""

import pytest

from repro.workloads.sizes import (GIB, MIB, STABLE_SIZES, SizeClass)


class TestTable3:
    def test_six_classes(self):
        assert len(SizeClass.ordered()) == 6

    def test_memory_footprints(self):
        expected = [1 * MIB, 8 * MIB, 64 * MIB, 512 * MIB, 4 * GIB, 32 * GIB]
        assert [s.mem_bytes for s in SizeClass.ordered()] == expected

    def test_1d_grid_matches_footprint(self):
        # elements * 4 bytes == footprint for every class.
        for size in SizeClass.ordered():
            assert size.elements_1d * 4 == size.mem_bytes

    def test_2d_sides(self):
        assert SizeClass.TINY.side_2d == 512
        assert SizeClass.SUPER.side_2d == 32 * 1024
        assert SizeClass.MEGA.side_2d == 64 * 1024

    def test_3d_sides(self):
        assert SizeClass.TINY.side_3d == 64
        assert SizeClass.MEGA.side_3d == 2048

    def test_footprint_split_across_buffers(self):
        # Table 3 footnote: 2 Tiny vectors of 128 K elements each.
        assert SizeClass.TINY.elements_for_buffers(2) == 128 * 1024

    def test_elements_for_buffers_validation(self):
        with pytest.raises(ValueError):
            SizeClass.TINY.elements_for_buffers(0)

    def test_from_label(self):
        assert SizeClass.from_label("SUPER") is SizeClass.SUPER
        with pytest.raises(ValueError):
            SizeClass.from_label("gigantic")

    def test_stable_sizes_are_large_and_super(self):
        assert STABLE_SIZES == (SizeClass.LARGE, SizeClass.SUPER)

    def test_monotonically_increasing(self):
        ordered = SizeClass.ordered()
        for smaller, larger in zip(ordered, ordered[1:]):
            assert larger.mem_bytes > smaller.mem_bytes
            assert larger.elements_1d > smaller.elements_1d
