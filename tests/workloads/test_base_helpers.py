"""Workload base-class helper tests."""

import pytest

from repro.workloads.base import (Workload, cycles_for_flops,
                                  cycles_for_int_ops,
                                  cycles_for_latency_bound_ops)


class TestCycleHelpers:
    def test_flops_on_roofline(self):
        # 128 FLOP per block-cycle (64 FP32 cores x FMA).
        assert cycles_for_flops(128.0) == 1.0
        assert cycles_for_flops(0.0) == 0.0

    def test_int_ops_half_rate(self):
        assert cycles_for_int_ops(64.0) == 1.0

    def test_latency_bound_scales_with_stalls(self):
        fast = cycles_for_latency_bound_ops(128.0, stall_cycles=1.0)
        slow = cycles_for_latency_bound_ops(128.0, stall_cycles=20.0)
        assert slow == 20 * fast

    @pytest.mark.parametrize("helper", [cycles_for_flops,
                                        cycles_for_int_ops,
                                        cycles_for_latency_bound_ops])
    def test_negative_rejected(self, helper):
        with pytest.raises(ValueError):
            helper(-1.0)

    def test_latency_stall_validated(self):
        with pytest.raises(ValueError):
            cycles_for_latency_bound_ops(10.0, stall_cycles=0.5)


class TestWorkloadBase:
    def test_missing_metadata_rejected(self):
        class Incomplete(Workload):
            name = "x"  # suite/domain/description missing

            def program(self, size):
                raise NotImplementedError

            def reference(self, rng=None):
                raise NotImplementedError

        with pytest.raises(TypeError):
            Incomplete()

    def test_default_supports_every_size(self):
        from repro.workloads.registry import get_workload
        from repro.workloads.sizes import SizeClass
        workload = get_workload("saxpy")
        assert all(workload.supports(size)
                   for size in SizeClass.ordered())

    def test_repr(self):
        from repro.workloads.registry import get_workload
        assert "vector_seq" in repr(get_workload("vector_seq"))
