"""UVMBench workload tests (bayesian, knn)."""

import math

import numpy as np
import pytest

from repro.workloads.uvmbench import (Bayesian, Knn, best_parent,
                                      family_counts, k2_score,
                                      knn_reference)


class TestFamilyCounts:
    def test_counts_sum_to_samples(self):
        rng = np.random.default_rng(0)
        samples = rng.integers(0, 2, size=(50, 3))
        counts = family_counts(samples, child=0, parents=(1, 2))
        assert sum(int(v.sum()) for v in counts.values()) == 50

    def test_no_parents_single_config(self):
        samples = np.array([[0], [1], [1]])
        counts = family_counts(samples, child=0, parents=())
        assert list(counts) == [()]
        np.testing.assert_array_equal(counts[()], [1, 2])


class TestK2Score:
    def test_matches_hand_computed_value(self):
        # 3 samples, child values [0, 1, 1], no parents:
        # score = log( 1!/(3+1)! * 1! * 2! ) = log(2/24).
        samples = np.array([[0], [1], [1]])
        assert k2_score(samples, 0, ()) == pytest.approx(
            math.log(2.0 / 24.0))

    def test_dependent_parent_scores_higher(self):
        rng = np.random.default_rng(1)
        x0 = rng.integers(0, 2, size=300)
        x1 = np.where(rng.random(300) < 0.95, x0, 1 - x0)
        x2 = rng.integers(0, 2, size=300)
        samples = np.stack([x0, x1, x2], axis=1)
        assert k2_score(samples, 1, (0,)) > k2_score(samples, 1, (2,))

    def test_best_parent_finds_dependency(self):
        result = Bayesian().reference()
        assert result["best_parent"] == 0


class TestKnn:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(2)
        points = rng.standard_normal((100, 3))
        query = rng.standard_normal(3)
        result = knn_reference(points, query, k=7)
        distances = np.linalg.norm(points - query, axis=1)
        expected = np.argsort(distances, kind="stable")[:7]
        np.testing.assert_array_equal(result["indices"], expected)

    def test_distances_sorted_ascending(self):
        result = Knn().reference()
        distances = result["distances"]
        assert all(a <= b for a, b in zip(distances, distances[1:]))

    def test_query_itself_is_nearest(self):
        points = np.array([[5.0, 5.0], [0.0, 0.0], [9.0, 9.0]])
        result = knn_reference(points, np.array([0.1, 0.0]), k=1)
        assert result["indices"][0] == 1

    def test_rejects_1d_points(self):
        with pytest.raises(ValueError):
            knn_reference(np.zeros(5), np.zeros(1))
