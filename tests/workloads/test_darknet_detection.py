"""YOLO decoding / NMS tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.darknet.detection import (Detection, box_iou,
                                               decode_yolo_output,
                                               non_max_suppression,
                                               top_k_classes)
from repro.workloads.darknet.layers import YoloAnchors

ANCHORS = YoloAnchors(anchors=((10, 14), (23, 27), (37, 58)), classes=3)


def make_detection(x=0.5, y=0.5, w=0.2, h=0.2, confidence=0.9,
                   class_id=0, class_prob=0.8):
    return Detection(x=x, y=y, w=w, h=h, confidence=confidence,
                     class_id=class_id, class_prob=class_prob)


class TestDetection:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_detection(confidence=1.5)
        with pytest.raises(ValueError):
            make_detection(w=-0.1)

    def test_corners_roundtrip(self):
        detection = make_detection(x=0.5, y=0.4, w=0.2, h=0.1)
        x1, y1, x2, y2 = detection.corners()
        assert (x1, y1) == pytest.approx((0.4, 0.35))
        assert (x2, y2) == pytest.approx((0.6, 0.45))

    def test_score_is_product(self):
        assert make_detection(confidence=0.5,
                              class_prob=0.4).score == pytest.approx(0.2)


class TestIou:
    def test_identical_boxes(self):
        a = make_detection()
        assert box_iou(a, a) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        a = make_detection(x=0.1)
        b = make_detection(x=0.9)
        assert box_iou(a, b) == 0.0

    def test_half_overlap(self):
        a = make_detection(x=0.5, w=0.2, h=0.2)
        b = make_detection(x=0.6, w=0.2, h=0.2)
        # Intersection 0.1x0.2, union 0.08 - 0.02.
        assert box_iou(a, b) == pytest.approx(0.02 / 0.06)

    @given(ax=st.floats(0.2, 0.8), bx=st.floats(0.2, 0.8),
           w=st.floats(0.05, 0.3))
    @settings(max_examples=40, deadline=None)
    def test_iou_symmetric_and_bounded(self, ax, bx, w):
        a = make_detection(x=ax, w=w)
        b = make_detection(x=bx, w=w)
        iou = box_iou(a, b)
        assert 0.0 <= iou <= 1.0 + 1e-9
        assert iou == pytest.approx(box_iou(b, a))


class TestDecode:
    def _tensor(self, objectness=-10.0):
        boxes = len(ANCHORS.anchors)
        attrs = 5 + ANCHORS.classes
        tensor = np.zeros((boxes, attrs, 4, 4), dtype=np.float32)
        tensor[:, 4] = objectness
        # Decoder consumes *post-sigmoid* head output for x/y/obj/cls.
        return 1.0 / (1.0 + np.exp(-tensor))

    def test_empty_below_threshold(self):
        tensor = self._tensor(objectness=-10.0)
        tensor = tensor.reshape(-1, 4, 4)
        assert decode_yolo_output(tensor, ANCHORS, 416) == []

    def test_confident_cell_decodes(self):
        raw = np.full((3, 8, 4, 4), -10.0, dtype=np.float32)
        raw[1, 4, 2, 3] = 10.0       # objectness at row 2, col 3
        raw[1, 5 + 2, 2, 3] = 10.0   # class 2
        raw[1, 0, 2, 3] = 0.0        # x offset -> sigmoid 0.5
        raw[1, 1, 2, 3] = 0.0
        tensor = 1.0 / (1.0 + np.exp(-raw))
        # w/h stay raw in the head output.
        tensor[1, 2] = 0.0
        tensor[1, 3] = 0.0
        detections = decode_yolo_output(
            tensor.reshape(-1, 4, 4), ANCHORS, 416,
            confidence_threshold=0.5)
        assert len(detections) == 1
        det = detections[0]
        assert det.class_id == 2
        assert det.x == pytest.approx((3 + 0.5) / 4)
        assert det.y == pytest.approx((2 + 0.5) / 4)
        # exp(0) * anchor / input.
        assert det.w == pytest.approx(23 / 416)
        assert det.h == pytest.approx(27 / 416)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            decode_yolo_output(np.zeros((7, 4, 4)), ANCHORS, 416)

    def test_batch_tensor_rejected(self):
        with pytest.raises(ValueError):
            decode_yolo_output(np.zeros((1, 24, 4, 4)), ANCHORS, 416)


class TestNms:
    def test_keeps_best_of_overlapping_pair(self):
        strong = make_detection(confidence=0.9)
        weak = make_detection(x=0.52, confidence=0.6)
        kept = non_max_suppression([strong, weak], iou_threshold=0.45)
        assert kept == [strong]

    def test_keeps_disjoint_boxes(self):
        a = make_detection(x=0.2)
        b = make_detection(x=0.8)
        assert len(non_max_suppression([a, b])) == 2

    def test_classes_suppressed_independently(self):
        a = make_detection(class_id=0)
        b = make_detection(class_id=1)  # same box, other class
        assert len(non_max_suppression([a, b])) == 2

    def test_result_sorted_by_score(self):
        detections = [make_detection(x=0.1, confidence=0.5),
                      make_detection(x=0.5, confidence=0.9),
                      make_detection(x=0.9, confidence=0.7)]
        kept = non_max_suppression(detections)
        scores = [d.score for d in kept]
        assert scores == sorted(scores, reverse=True)

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            non_max_suppression([], iou_threshold=1.5)

    @given(st.lists(st.tuples(st.floats(0.1, 0.9), st.floats(0.3, 1.0)),
                    max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_nms_never_grows_and_keeps_best(self, specs):
        detections = [make_detection(x=x, confidence=c)
                      for x, c in specs]
        kept = non_max_suppression(detections)
        assert len(kept) <= len(detections)
        if detections:
            best = max(detections, key=lambda d: d.score)
            assert best in kept


class TestTopK:
    def test_orders_descending(self):
        probs = np.array([0.1, 0.6, 0.3])
        assert top_k_classes(probs, k=2) == [(1, pytest.approx(0.6)),
                                             (2, pytest.approx(0.3))]

    def test_k_validated(self):
        with pytest.raises(ValueError):
            top_k_classes(np.array([0.5]), k=2)

    def test_end_to_end_with_resnet(self):
        from repro.workloads.darknet import build_resnet18
        net = build_resnet18(64)
        x = np.random.default_rng(0).random((1, 3, 64, 64)).astype(
            np.float32)
        probs = net.forward(x)
        top = top_k_classes(probs[0], k=5)
        assert len(top) == 5
        assert all(0 <= cid < 1000 for cid, _ in top)
        assert top[0][1] >= top[-1][1]


class TestEndToEndDetect:
    def test_detect_on_tiny_yolo(self):
        import numpy as np
        from repro.workloads.darknet import build_yolov3_tiny, detect
        net = build_yolov3_tiny(96)
        images = np.random.default_rng(0).random(
            (2, 3, 96, 96)).astype(np.float32)
        # Random weights give ~0.5 objectness everywhere; threshold low
        # enough to exercise the full decode + NMS path.
        results = detect(net, images, confidence_threshold=0.55,
                         iou_threshold=0.45)
        assert len(results) == 2
        for detections in results:
            scores = [d.score for d in detections]
            assert scores == sorted(scores, reverse=True)
            for d in detections:
                assert 0 <= d.class_id < 80

    def test_detect_rejects_classifier(self):
        import numpy as np
        from repro.workloads.darknet import build_resnet18
        from repro.workloads.darknet.detection import detect
        net = build_resnet18(64)
        with pytest.raises(ValueError, match="YOLO"):
            detect(net, np.zeros((1, 3, 64, 64), dtype=np.float32))

    def test_forward_heads_counts(self):
        import numpy as np
        from repro.workloads.darknet import (build_resnet18,
                                             build_yolov3_tiny)
        tiny = build_yolov3_tiny(96)
        x = np.random.default_rng(1).random((1, 3, 96, 96)).astype(
            np.float32)
        heads = tiny.forward_heads(x)
        assert len(heads) == 2
        resnet = build_resnet18(64)
        y = np.random.default_rng(1).random((1, 3, 64, 64)).astype(
            np.float32)
        assert len(resnet.forward_heads(y)) == 1
