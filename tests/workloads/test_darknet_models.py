"""Darknet model-builder and network-lowering tests."""

import numpy as np
import pytest

from repro.workloads.darknet import (Network, build_resnet18, build_resnet50,
                                     build_yolov3, build_yolov3_tiny)
from repro.workloads.darknet.layers import ConvLayer, YoloLayer
from repro.workloads.darknet.workloads import (Resnet18, Resnet50, Yolov3,
                                               Yolov3Tiny)
from repro.workloads.sizes import SizeClass


class TestResnets:
    def test_resnet18_has_18_convolutions_plus_projections(self):
        net = build_resnet18(64)
        convs = net.conv_layers()
        # 1 stem + 16 block convs + 3 projection shortcuts.
        assert len(convs) == 20

    def test_resnet18_output_is_imagenet_distribution(self):
        net = build_resnet18(64)
        assert net.out_shape == (1000, 1, 1)
        x = np.random.default_rng(0).random((2, 3, 64, 64)).astype(
            np.float32)
        out = net.forward(x)
        np.testing.assert_allclose(out.reshape(2, -1).sum(axis=1), 1.0,
                                   rtol=1e-4)

    def test_resnet50_parameter_count_in_expected_band(self):
        net = build_resnet50(64)
        params = net.weight_bytes() / 4
        # Torch resnet50 has ~25.6 M parameters; the darknet layout
        # (conv-only, folded BN) lands in the same band.
        assert 20e6 < params < 35e6

    def test_resnet18_parameter_count(self):
        params = build_resnet18(64).weight_bytes() / 4
        assert 10e6 < params < 14e6  # ~11.7 M

    def test_resnet_works_at_multiple_input_sizes(self):
        for size in (64, 128):
            net = build_resnet18(size)
            assert net.out_shape == (1000, 1, 1)


class TestYolo:
    def test_yolov3_has_three_detection_heads(self):
        net = build_yolov3(96)
        heads = [l for l in net.layers if isinstance(l, YoloLayer)]
        assert len(heads) == 3

    def test_yolov3_has_75_convolutions(self):
        net = build_yolov3(96)
        assert len(net.conv_layers()) == 75  # darknet-53 (52) + head (23)

    def test_yolov3_parameter_count(self):
        params = build_yolov3(96).weight_bytes() / 4
        assert 55e6 < params < 70e6  # ~62 M

    def test_yolov3_grid_scales(self):
        net = build_yolov3(96)
        head_shapes = [l.out_shape for l in net.layers
                       if isinstance(l, YoloLayer)]
        assert head_shapes[0][1:] == (3, 3)    # 96 / 32
        assert head_shapes[1][1:] == (6, 6)    # 96 / 16
        assert head_shapes[2][1:] == (12, 12)  # 96 / 8

    def test_yolov3_tiny_structure(self):
        net = build_yolov3_tiny(96)
        heads = [l for l in net.layers if isinstance(l, YoloLayer)]
        assert len(heads) == 2
        assert len(net.conv_layers()) == 13

    def test_forward_pass_finite(self):
        net = build_yolov3_tiny(96)
        x = np.random.default_rng(1).random((1, 3, 96, 96)).astype(
            np.float32)
        out = net.forward(x)
        assert np.all(np.isfinite(out))

    def test_input_size_must_be_multiple_of_32(self):
        with pytest.raises(ValueError):
            build_yolov3(100)


class TestNetworkLowering:
    def test_program_has_phase_per_layer(self):
        net = build_yolov3_tiny(96)
        program = net.build_program(batch=4)
        assert len(program.phases) == len(net.layers)

    def test_conv_layers_become_gemm_kernels(self):
        net = build_resnet18(64)
        program = net.build_program(batch=2)
        conv_phases = [p for p in program.phases
                       if ".conv" in p.descriptor.name]
        assert len(conv_phases) == len(net.conv_layers())
        for phase in conv_phases:
            assert phase.descriptor.sync_overlap == 1.0  # gemm family

    def test_program_buffers(self):
        net = build_yolov3_tiny(96)
        program = net.build_program(batch=2)
        names = {b.name for b in program.buffers}
        assert names == {"weights", "images", "activations", "predictions"}

    def test_wrong_batch_rejected(self):
        with pytest.raises(ValueError):
            build_yolov3_tiny(96).build_program(batch=0)

    def test_flops_scale_quadratically_with_resolution(self):
        small = build_yolov3_tiny(96).total_flops_per_image()
        large = build_yolov3_tiny(192).total_flops_per_image()
        assert large == pytest.approx(4 * small, rel=0.05)


class TestWorkloadWrappers:
    @pytest.mark.parametrize("cls", [Resnet18, Resnet50, Yolov3Tiny, Yolov3])
    def test_programs_build_at_super(self, cls):
        workload = cls()
        program = workload.program(SizeClass.SUPER)
        assert program.name == workload.name
        assert program.footprint_bytes > 0

    def test_batch_scales_with_size_class(self):
        workload = Yolov3Tiny()
        assert workload.batch_for(SizeClass.SUPER) > \
            workload.batch_for(SizeClass.MEDIUM)

    def test_references_run_inference(self):
        result = Yolov3Tiny().reference()
        assert result["predictions"].shape[0] == 2
