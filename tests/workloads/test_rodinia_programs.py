"""Structural tests for the Rodinia/UVMBench device programs."""

import pytest

from repro.sim.kernel import AccessPattern
from repro.workloads.registry import get_workload
from repro.workloads.sizes import SizeClass

SUPER = SizeClass.SUPER


class TestAnomalyEncodings:
    """The paper's three called-out behaviours live in the descriptors."""

    def test_nw_first_kernel_shares_data(self):
        program = get_workload("nw").program(SUPER)
        descriptors = program.descriptors()
        assert len(descriptors) == 2
        assert descriptors[0].shares_data_with_next
        assert not descriptors[1].shares_data_with_next

    def test_lud_is_irregular(self):
        descriptor = get_workload("lud").program(SUPER).descriptors()[0]
        assert descriptor.access_pattern is AccessPattern.IRREGULAR
        assert not descriptor.access_pattern.prefetch_friendly

    def test_kmeans_iterates_over_same_data(self):
        program = get_workload("kmeans").program(SUPER)
        phase = program.phases[0]
        assert phase.count > 1
        assert not phase.fresh_data
        assert phase.host_sync_bytes > 0  # per-iteration membership copies

    def test_pathfinder_streams_fresh_bands(self):
        program = get_workload("pathfinder").program(SUPER)
        phase = program.phases[0]
        assert phase.count > 100
        assert phase.fresh_data


class TestStructure:
    @pytest.mark.parametrize("name", ["pathfinder", "backprop", "lud",
                                      "kmeans", "knn", "srad", "lavaMD",
                                      "bayesian", "nw", "hotspot"])
    def test_programs_build_and_have_io(self, name):
        program = get_workload(name).program(SUPER)
        assert program.h2d_bytes > 0
        assert program.footprint_bytes > 0
        assert program.total_kernel_launches >= 1

    def test_srad_alternates_two_kernels(self):
        program = get_workload("srad").program(SUPER)
        names = [phase.descriptor.name for phase in program.phases]
        assert names[:2] == ["srad_cuda_1", "srad_cuda_2"]
        assert len(names) == 20  # 10 iterations x 2 kernels

    def test_hotspot_iterates(self):
        program = get_workload("hotspot").program(SUPER)
        assert program.phases[0].count == 20

    def test_backprop_two_kernels(self):
        program = get_workload("backprop").program(SUPER)
        assert [p.descriptor.name for p in program.phases] == \
            ["bpnn_layerforward", "bpnn_adjust_weights"]

    def test_lud_footprint_is_matrix(self):
        program = get_workload("lud").program(SUPER)
        descriptor = program.descriptors()[0]
        assert descriptor.data_footprint_bytes == program.footprint_bytes

    def test_bayesian_launches_per_variable(self):
        program = get_workload("bayesian").program(SUPER)
        assert program.phases[0].count == 16
