"""Darknet weight-file round-trip tests."""

import numpy as np
import pytest

from repro.workloads.darknet import build_resnet18, build_yolov3_tiny
from repro.workloads.darknet.weights import (HEADER_BYTES,
                                             WeightsFormatError,
                                             load_weights, save_weights)


@pytest.fixture
def tiny_net():
    return build_yolov3_tiny(96)


class TestRoundTrip:
    def test_save_load_preserves_outputs(self, tmp_path, tiny_net):
        rng = np.random.default_rng(0)
        image = rng.random((1, 3, 96, 96)).astype(np.float32)
        before = tiny_net.forward(image)

        path = save_weights(tiny_net, tmp_path / "net.weights", seen_images=7)
        # Perturb in memory, then restore from disk.
        conv = tiny_net.conv_layers()[0][1]
        conv.weights = conv.weights + 1.0
        assert not np.allclose(tiny_net.forward(image), before)

        major, seen = load_weights(tiny_net, path)
        assert seen == 7
        np.testing.assert_allclose(tiny_net.forward(image), before,
                                   rtol=1e-6)

    def test_file_size_matches_parameter_count(self, tmp_path, tiny_net):
        path = save_weights(tiny_net, tmp_path / "net.weights")
        expected = HEADER_BYTES + tiny_net.weight_bytes()
        assert path.stat().st_size == expected

    def test_resnet_roundtrip(self, tmp_path):
        net = build_resnet18(64)
        path = save_weights(net, tmp_path / "resnet.weights")
        major, seen = load_weights(net, path)
        assert major == 0
        assert seen == 0


class TestErrorHandling:
    def test_truncated_file_rejected(self, tmp_path, tiny_net):
        path = save_weights(tiny_net, tmp_path / "net.weights")
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.raises(WeightsFormatError, match="truncated"):
            load_weights(tiny_net, path)

    def test_empty_file_rejected(self, tmp_path, tiny_net):
        path = tmp_path / "empty.weights"
        path.write_bytes(b"")
        with pytest.raises(WeightsFormatError, match="header"):
            load_weights(tiny_net, path)

    def test_architecture_mismatch_detected(self, tmp_path, tiny_net):
        """Loading a bigger net's file leaves trailing data."""
        big = build_resnet18(64)
        path = save_weights(big, tmp_path / "resnet.weights")
        with pytest.raises(WeightsFormatError):
            load_weights(tiny_net, path)
