"""Darknet layer-zoo tests against scipy/NumPy oracles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import signal

from repro.workloads.darknet.layers import (AvgPoolLayer, ConnectedLayer,
                                            ConvLayer, MaxPoolLayer,
                                            RouteLayer, ShortcutLayer,
                                            SoftmaxLayer, UpsampleLayer,
                                            YoloAnchors, YoloLayer, im2col,
                                            leaky_relu, relu)

RNG = np.random.default_rng(99)


class TestActivations:
    def test_leaky_relu(self):
        x = np.array([-10.0, 0.0, 10.0])
        np.testing.assert_allclose(leaky_relu(x), [-1.0, 0.0, 10.0])

    def test_relu(self):
        np.testing.assert_allclose(relu(np.array([-5.0, 5.0])), [0.0, 5.0])


class TestIm2col:
    def test_shapes(self):
        x = RNG.random((2, 3, 8, 8)).astype(np.float32)
        cols = im2col(x, ksize=3, stride=1, pad=1)
        assert cols.shape == (2, 27, 64)

    def test_stride_two(self):
        x = RNG.random((1, 1, 8, 8)).astype(np.float32)
        cols = im2col(x, ksize=2, stride=2, pad=0)
        assert cols.shape == (1, 4, 16)

    def test_1x1_is_flatten(self):
        x = RNG.random((1, 4, 5, 5)).astype(np.float32)
        cols = im2col(x, ksize=1, stride=1, pad=0)
        np.testing.assert_allclose(cols[0], x[0].reshape(4, 25))

    def test_kernel_too_large_rejected(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 1, 2, 2), dtype=np.float32), ksize=5,
                   stride=1, pad=0)


class TestConvLayer:
    def test_matches_scipy_correlation(self):
        layer = ConvLayer(2, 3, ksize=3, stride=1, batch_normalize=False,
                          activation="linear", rng=np.random.default_rng(1))
        x = RNG.random((1, 2, 10, 10)).astype(np.float32)
        out = layer.configure((2, 10, 10)) and None
        out = layer.forward(x, [])
        # Oracle: scipy correlate2d per (out_channel, in_channel) pair.
        weights = layer.weights.reshape(3, 3, 3, 2)  # (out, ky, kx, in)
        for oc in range(3):
            expected = np.zeros((10, 10))
            for ic in range(2):
                kernel = np.array(
                    [[weights[oc, ky, kx, ic] for kx in range(3)]
                     for ky in range(3)])
                expected += signal.correlate2d(x[0, ic], kernel,
                                               mode="same")
            np.testing.assert_allclose(out[0, oc], expected, rtol=1e-3,
                                       atol=1e-4)

    def test_stride_halves_spatial_dims(self):
        layer = ConvLayer(3, 8, ksize=3, stride=2)
        assert layer.configure((3, 32, 32)) == (8, 16, 16)

    def test_channel_mismatch_rejected(self):
        layer = ConvLayer(3, 8)
        with pytest.raises(ValueError):
            layer.configure((4, 32, 32))

    def test_batchnorm_identity_at_init(self):
        """BN starts as identity (mean 0, var 1, gamma 1)."""
        with_bn = ConvLayer(1, 1, batch_normalize=True,
                            activation="linear",
                            rng=np.random.default_rng(3))
        without = ConvLayer(1, 1, batch_normalize=False,
                            activation="linear",
                            rng=np.random.default_rng(3))
        x = RNG.random((1, 1, 6, 6)).astype(np.float32)
        with_bn.configure((1, 6, 6))
        without.configure((1, 6, 6))
        np.testing.assert_allclose(with_bn.forward(x, []),
                                   without.forward(x, []), rtol=1e-3,
                                   atol=1e-5)

    def test_weight_bytes_counts_bn_params(self):
        layer = ConvLayer(4, 8, ksize=3, batch_normalize=True)
        expected = 4 * (8 * 4 * 9 + 8 + 3 * 8)
        assert layer.weight_bytes() == expected

    def test_gemm_shape(self):
        layer = ConvLayer(16, 32, ksize=3)
        layer.configure((16, 20, 20))
        assert layer.gemm_shape() == (32, 400, 144)


class TestPooling:
    def test_maxpool_2x2(self):
        layer = MaxPoolLayer(size=2)
        layer.configure((1, 4, 4))
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = layer.forward(x, [])
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_stride1_keeps_size(self):
        layer = MaxPoolLayer(size=2, stride=1)
        assert layer.configure((8, 13, 13)) == (8, 13, 13)
        x = RNG.random((1, 8, 13, 13)).astype(np.float32)
        out = layer.forward(x, [])
        assert out.shape == (1, 8, 13, 13)
        assert np.all(out >= x)  # max over a window including self

    def test_global_avgpool(self):
        layer = AvgPoolLayer()
        assert layer.configure((16, 8, 8)) == (16, 1, 1)
        x = RNG.random((2, 16, 8, 8)).astype(np.float32)
        out = layer.forward(x, [])
        np.testing.assert_allclose(out[:, :, 0, 0], x.mean(axis=(2, 3)),
                                   rtol=1e-6)


class TestUpsampleRouteShortcut:
    def test_upsample_repeats_pixels(self):
        layer = UpsampleLayer(stride=2)
        assert layer.configure((1, 2, 2)) == (1, 4, 4)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = layer.forward(x, [])
        np.testing.assert_allclose(out[0, 0, :2, :2],
                                   [[1.0, 1.0], [1.0, 1.0]])
        np.testing.assert_allclose(out[0, 0, 2:, 2:],
                                   [[4.0, 4.0], [4.0, 4.0]])

    def test_route_concatenates_channels(self):
        layer = RouteLayer((0, 1))
        layer.configure_from([(2, 4, 4), (3, 4, 4)])
        assert layer.out_shape == (5, 4, 4)
        a = np.ones((1, 2, 4, 4), dtype=np.float32)
        b = np.zeros((1, 3, 4, 4), dtype=np.float32)
        out = layer.forward(None, [a, b])
        assert out.shape == (1, 5, 4, 4)
        np.testing.assert_allclose(out[0, :2], 1.0)
        np.testing.assert_allclose(out[0, 2:], 0.0)

    def test_route_rejects_mismatched_spatial(self):
        layer = RouteLayer((0, 1))
        with pytest.raises(ValueError):
            layer.configure_from([(2, 4, 4), (3, 8, 8)])

    def test_shortcut_adds_source(self):
        layer = ShortcutLayer(source=0)
        layer.configure((2, 3, 3))
        a = np.full((1, 2, 3, 3), 2.0, dtype=np.float32)
        x = np.full((1, 2, 3, 3), 5.0, dtype=np.float32)
        np.testing.assert_allclose(layer.forward(x, [a]), 7.0)


class TestHeads:
    def test_connected_is_affine(self):
        layer = ConnectedLayer(12, 4, rng=np.random.default_rng(0))
        layer.configure((3, 2, 2))
        x = RNG.random((2, 3, 2, 2)).astype(np.float32)
        out = layer.forward(x, [])
        expected = x.reshape(2, 12) @ layer.weights.T + layer.bias
        np.testing.assert_allclose(out[:, :, 0, 0], expected, rtol=1e-5)

    def test_connected_rejects_wrong_fan_in(self):
        layer = ConnectedLayer(10, 4)
        with pytest.raises(ValueError):
            layer.configure((3, 2, 2))

    def test_softmax_sums_to_one(self):
        layer = SoftmaxLayer()
        layer.configure((10, 1, 1))
        x = RNG.standard_normal((3, 10, 1, 1)).astype(np.float32)
        out = layer.forward(x, [])
        np.testing.assert_allclose(out.reshape(3, -1).sum(axis=1), 1.0,
                                   rtol=1e-5)

    def test_softmax_invariant_to_shift(self):
        layer = SoftmaxLayer()
        layer.configure((5, 1, 1))
        x = RNG.standard_normal((1, 5, 1, 1)).astype(np.float32)
        np.testing.assert_allclose(layer.forward(x, []),
                                   layer.forward(x + 100.0, []), rtol=1e-4)

    def test_yolo_sigmoids_right_attributes(self):
        anchors = YoloAnchors(anchors=((10, 13), (16, 30), (33, 23)),
                              classes=80)
        layer = YoloLayer(anchors)
        layer.configure((255, 4, 4))
        x = np.clip(RNG.standard_normal((1, 255, 4, 4)) * 3, -8, 8) \
            .astype(np.float32)
        out = layer.forward(x, []).reshape(1, 3, 85, 4, 4)
        # x, y, objectness, classes in (0, 1); w/h raw.
        assert np.all((out[:, :, 0:2] > 0) & (out[:, :, 0:2] < 1))
        assert np.all((out[:, :, 4:] > 0) & (out[:, :, 4:] < 1))
        raw = x.reshape(1, 3, 85, 4, 4)
        np.testing.assert_allclose(out[:, :, 2:4], raw[:, :, 2:4])

    def test_yolo_rejects_wrong_channels(self):
        anchors = YoloAnchors(anchors=((1, 1),), classes=2)
        with pytest.raises(ValueError):
            YoloLayer(anchors).configure((10, 4, 4))


class TestProperties:
    @given(channels=st.integers(1, 4), side=st.integers(4, 12),
           ksize=st.sampled_from([1, 3]))
    @settings(max_examples=20, deadline=None)
    def test_conv_output_shape_formula(self, channels, side, ksize):
        layer = ConvLayer(channels, 2, ksize=ksize, stride=1)
        out_shape = layer.configure((channels, side, side))
        assert out_shape == (2, side, side)  # same padding
        x = np.random.default_rng(0).random(
            (1, channels, side, side)).astype(np.float32)
        assert layer.forward(x, []).shape == (1, 2, side, side)
