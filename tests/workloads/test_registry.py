"""Registry / Table 2 completeness tests."""

import pytest

from repro.workloads.base import Workload
from repro.workloads.registry import (ALL_NAMES, APP_NAMES, MICRO_NAMES,
                                      all_workloads, app_workloads,
                                      get_workload, micro_workloads,
                                      workloads_by_suite)


class TestTable2Completeness:
    def test_twentyone_workloads(self):
        assert len(ALL_NAMES) == 21
        assert len(MICRO_NAMES) == 7
        assert len(APP_NAMES) == 14

    def test_figure7_order(self):
        assert MICRO_NAMES == ("vector_seq", "vector_rand", "saxpy", "gemv",
                               "gemm", "2DCONV", "3DCONV")

    def test_figure8_order(self):
        assert APP_NAMES[:4] == ("pathfinder", "backprop", "lud", "kmeans")
        assert APP_NAMES[-2:] == ("nw", "hotspot")

    def test_every_entry_is_workload(self):
        for workload in all_workloads():
            assert isinstance(workload, Workload)
            assert workload.name
            assert workload.description
            assert workload.suite in ("micro", "rodinia", "uvmbench",
                                      "darknet")

    def test_lookup(self):
        assert get_workload("lud").name == "lud"
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_suite_partitions(self):
        assert len(workloads_by_suite("micro")) == 7
        assert len(workloads_by_suite("rodinia")) == 8
        assert len(workloads_by_suite("uvmbench")) == 2
        assert len(workloads_by_suite("darknet")) == 4
        with pytest.raises(KeyError):
            workloads_by_suite("spec2006")

    def test_micro_and_app_helpers(self):
        assert [w.name for w in micro_workloads()] == list(MICRO_NAMES)
        assert [w.name for w in app_workloads()] == list(APP_NAMES)

    def test_domains_cover_paper_claim(self):
        """Table 2: linear algebra, physics, data mining, image
        processing, and ML are all represented."""
        domains = {w.domain for w in all_workloads()}
        for expected in ("linear algebra", "data mining",
                         "image processing", "machine learning"):
            assert expected in domains
