"""Functional correctness of the Rodinia application algorithms."""

import numpy as np
import pytest
from scipy import linalg

from repro.workloads.rodinia import (backprop_reference,
                                     diagonally_dominant, hotspot_reference,
                                     hotspot_step, kmeans_assign,
                                     kmeans_reference, lavamd_reference,
                                     lud_reference, nw_reference,
                                     pathfinder_reference, sigmoid,
                                     srad_reference, srad_step)
from repro.workloads.rodinia.hotspot import AMBIENT


class TestPathfinder:
    def test_matches_bruteforce_enumeration(self):
        rng = np.random.default_rng(0)
        wall = rng.integers(0, 9, size=(5, 4)).astype(np.int64)

        def brute(col):
            best = None
            # Enumerate all paths ending at (last row, col).
            def explore(row, c, cost):
                nonlocal best
                cost += wall[row, c]
                if row == wall.shape[0] - 1:
                    if c == col and (best is None or cost < best):
                        best = cost
                    return
                for dc in (-1, 0, 1):
                    nc = c + dc
                    if 0 <= nc < wall.shape[1]:
                        explore(row + 1, nc, cost)
            for start in range(wall.shape[1]):
                explore(0, start, 0)
            return best

        dp = pathfinder_reference(wall)
        for col in range(wall.shape[1]):
            assert dp[col] == brute(col)

    def test_single_row_is_identity(self):
        wall = np.array([[3, 1, 4]])
        np.testing.assert_array_equal(pathfinder_reference(wall),
                                      [3, 1, 4])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            pathfinder_reference(np.array([1, 2, 3]))


class TestBackprop:
    def test_sigmoid_range_and_midpoint(self):
        assert sigmoid(np.array(0.0)) == 0.5
        values = sigmoid(np.linspace(-10, 10, 21))
        assert np.all((values > 0) & (values < 1))

    def test_training_step_reduces_error(self):
        rng = np.random.default_rng(5)
        inputs = rng.random(32)
        w_ih = rng.standard_normal((32, 16)) * 0.1
        w_ho = rng.standard_normal(16) * 0.1
        target = 0.9
        result = backprop_reference(inputs, w_ih, w_ho, target, eta=0.5)
        new_output = float(sigmoid(sigmoid(inputs @ result["w_ih"])
                                   @ result["w_ho"]))
        assert abs(new_output - target) < abs(result["output"] - target)

    def test_delta_out_matches_analytic_gradient(self):
        rng = np.random.default_rng(6)
        inputs = rng.random(8)
        w_ih = rng.standard_normal((8, 16)) * 0.1
        w_ho = rng.standard_normal(16) * 0.1
        result = backprop_reference(inputs, w_ih, w_ho, target=0.7)
        out = result["output"]
        expected = out * (1 - out) * (0.7 - out)
        assert result["delta_out"] == pytest.approx(expected)


class TestLud:
    def test_reconstructs_matrix(self):
        matrix = diagonally_dominant(np.random.default_rng(1), 32)
        factors = lud_reference(matrix)
        np.testing.assert_allclose(factors["L"] @ factors["U"], matrix,
                                   rtol=1e-8, atol=1e-8)

    def test_triangular_structure(self):
        matrix = diagonally_dominant(np.random.default_rng(2), 16)
        factors = lud_reference(matrix)
        assert np.allclose(factors["L"], np.tril(factors["L"]))
        assert np.allclose(factors["U"], np.triu(factors["U"]))
        np.testing.assert_allclose(np.diag(factors["L"]), 1.0)

    def test_agrees_with_scipy_on_pivot_free_matrix(self):
        matrix = diagonally_dominant(np.random.default_rng(3), 24)
        ours = lud_reference(matrix)
        _, lower, upper = linalg.lu(matrix)
        # Diagonally dominant: scipy's permutation is identity.
        np.testing.assert_allclose(ours["L"], lower, rtol=1e-7, atol=1e-7)
        np.testing.assert_allclose(ours["U"], upper, rtol=1e-7, atol=1e-7)

    def test_zero_pivot_rejected(self):
        with pytest.raises(ZeroDivisionError):
            lud_reference(np.zeros((3, 3)))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            lud_reference(np.zeros((2, 3)))


class TestKmeans:
    def test_recovers_separated_blobs(self):
        rng = np.random.default_rng(8)
        centers = np.array([[0.0] * 5, [20.0] * 5, [-20.0] * 5])
        points = np.concatenate([
            center + rng.standard_normal((30, 5)) for center in centers])
        result = kmeans_reference(points, k=3, rng=rng)
        labels = result["labels"]
        # Every original blob maps to exactly one cluster.
        for blob in range(3):
            blob_labels = labels[blob * 30:(blob + 1) * 30]
            assert len(set(blob_labels.tolist())) == 1
        assert len(set(labels.tolist())) == 3

    def test_assignment_picks_nearest(self):
        points = np.array([[0.0], [10.0]])
        centroids = np.array([[1.0], [9.0]])
        np.testing.assert_array_equal(kmeans_assign(points, centroids),
                                      [0, 1])

    def test_centroids_are_member_means(self):
        result = kmeans_reference(np.array([[0.0], [2.0], [10.0], [12.0]]),
                                  k=2, rng=np.random.default_rng(0))
        recomputed = sorted(float(c[0]) for c in result["centroids"])
        assert recomputed == pytest.approx([1.0, 11.0])


class TestSrad:
    def test_smooths_speckle(self):
        rng = np.random.default_rng(9)
        image = np.exp(rng.standard_normal((32, 32)) * 0.3) + 1.0
        smoothed = srad_reference(image, iterations=8)
        assert smoothed.std() < image.std()

    def test_constant_image_is_fixed_point(self):
        image = np.full((16, 16), 3.0)
        np.testing.assert_allclose(srad_step(image), image, rtol=1e-9)

    def test_positive_images_stay_finite(self):
        rng = np.random.default_rng(10)
        image = rng.random((24, 24)) + 0.5
        out = srad_reference(image, iterations=5)
        assert np.all(np.isfinite(out))


class TestLavaMD:
    def test_self_interaction_dominates_potential(self):
        positions = np.array([[0.0, 0.0, 0.0], [100.0, 0.0, 0.0]])
        charges = np.array([2.0, 3.0])
        result = lavamd_reference(positions, charges)
        # Far-apart particles only see themselves: v_i ~ q_i.
        np.testing.assert_allclose(result["potential"], charges, rtol=1e-6)

    def test_symmetric_pair_forces_cancel(self):
        positions = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        charges = np.array([1.0, 1.0])
        result = lavamd_reference(positions, charges)
        np.testing.assert_allclose(result["force"][0],
                                   -result["force"][1], atol=1e-12)

    def test_potential_matches_direct_sum(self):
        rng = np.random.default_rng(11)
        positions = rng.random((5, 3))
        charges = rng.random(5)
        result = lavamd_reference(positions, charges, alpha=0.5)
        for i in range(5):
            direct = sum(
                np.exp(-0.25 * np.sum((positions[i] - positions[j]) ** 2))
                * charges[j] for j in range(5))
            assert result["potential"][i] == pytest.approx(direct)


class TestNeedlemanWunsch:
    def test_identical_sequences_score_all_matches(self):
        seq = np.array([0, 1, 2, 3])
        result = nw_reference(seq, seq)
        assert result["alignment_score"] == 4 * 3  # 4 matches x BLOSUM 3

    def test_empty_alignment_is_pure_gaps(self):
        result = nw_reference(np.array([0, 1]), np.array([], dtype=int))
        assert result["alignment_score"] == -2  # two gap penalties

    def test_score_matrix_boundaries(self):
        result = nw_reference(np.array([0]), np.array([1]))
        score = result["score"]
        assert score[0, 0] == 0
        assert score[1, 0] == -1
        assert score[0, 1] == -1

    def test_mismatch_vs_gap_tradeoff(self):
        # One mismatch (-2) beats two gaps (-2 each).
        result = nw_reference(np.array([0]), np.array([1]))
        assert result["alignment_score"] == -2


class TestHotSpot:
    def test_uniform_power_free_cools_to_ambient(self):
        temp = np.full((16, 16), AMBIENT + 40.0)
        power = np.zeros((16, 16))
        cooled = hotspot_reference(temp, power, iterations=200)
        np.testing.assert_allclose(cooled, AMBIENT, atol=1.0)

    def test_powered_cell_heats_up(self):
        temp = np.full((16, 16), AMBIENT)
        power = np.zeros((16, 16))
        power[8, 8] = 10.0
        heated = hotspot_step(temp, power)
        assert heated[8, 8] > AMBIENT
        assert heated[0, 0] == pytest.approx(AMBIENT)

    def test_heat_diffuses_to_neighbors(self):
        temp = np.full((16, 16), AMBIENT)
        temp[8, 8] = AMBIENT + 50.0
        stepped = hotspot_step(temp, np.zeros((16, 16)))
        assert stepped[8, 7] > AMBIENT
        assert stepped[8, 8] < AMBIENT + 50.0


class TestBlockedLud:
    """The blocked algorithm (Rodinia's actual kernel structure) must
    agree with straight Gaussian elimination."""

    def test_matches_unblocked_factors(self):
        from repro.workloads.rodinia import lud_blocked_reference
        matrix = diagonally_dominant(np.random.default_rng(4), 96)
        blocked = lud_blocked_reference(matrix, block=32)
        straight = lud_reference(matrix)
        np.testing.assert_allclose(blocked["L"], straight["L"],
                                   rtol=1e-8, atol=1e-8)
        np.testing.assert_allclose(blocked["U"], straight["U"],
                                   rtol=1e-8, atol=1e-8)

    def test_reconstructs_matrix(self):
        from repro.workloads.rodinia import lud_blocked_reference
        matrix = diagonally_dominant(np.random.default_rng(5), 64)
        factors = lud_blocked_reference(matrix, block=16)
        np.testing.assert_allclose(factors["L"] @ factors["U"], matrix,
                                   rtol=1e-8, atol=1e-8)

    def test_single_block_degenerates_to_unblocked(self):
        from repro.workloads.rodinia import lud_blocked_reference
        matrix = diagonally_dominant(np.random.default_rng(6), 16)
        blocked = lud_blocked_reference(matrix, block=16)
        straight = lud_reference(matrix)
        np.testing.assert_allclose(blocked["U"], straight["U"], rtol=1e-9)

    def test_block_mismatch_rejected(self):
        from repro.workloads.rodinia import lud_blocked_reference
        with pytest.raises(ValueError):
            lud_blocked_reference(np.eye(10), block=32)


class TestNwTraceback:
    def test_identical_sequences_align_without_gaps(self):
        from repro.workloads.rodinia import nw_traceback
        seq = np.array([0, 1, 2, 3])
        score = nw_reference(seq, seq)["score"]
        alignment = nw_traceback(seq, seq, score)
        assert alignment["gaps"] == 0
        assert alignment["matches"] == 4
        assert alignment["aligned_a"] == alignment["aligned_b"]

    def test_insertion_produces_one_gap(self):
        from repro.workloads.rodinia import nw_traceback
        seq_a = np.array([0, 1, 2, 3, 1])
        seq_b = np.array([0, 1, 3, 1])  # '2' deleted
        score = nw_reference(seq_a, seq_b)["score"]
        alignment = nw_traceback(seq_a, seq_b, score)
        assert alignment["gaps"] == 1
        assert alignment["matches"] == 4
        assert len(alignment["aligned_a"]) == len(alignment["aligned_b"])

    def test_alignment_score_consistent(self):
        """Recomputing the score from the traceback must reproduce the
        DP's optimum."""
        from repro.workloads.rodinia import nw_traceback
        from repro.workloads.rodinia.nw import (BLOSUM_MATCH,
                                                BLOSUM_MISMATCH,
                                                GAP_PENALTY)
        rng = np.random.default_rng(7)
        seq_a = rng.integers(0, 4, size=20)
        seq_b = rng.integers(0, 4, size=24)
        result = nw_reference(seq_a, seq_b)
        alignment = nw_traceback(seq_a, seq_b, result["score"])
        total = 0
        for a, b in zip(alignment["aligned_a"], alignment["aligned_b"]):
            if a == -1 or b == -1:
                total -= GAP_PENALTY
            elif a == b:
                total += BLOSUM_MATCH
            else:
                total += BLOSUM_MISMATCH
        assert total == result["alignment_score"]


class TestKmeansPlusPlus:
    def test_seeds_are_actual_points(self):
        from repro.workloads.rodinia import kmeans_plusplus_init
        rng = np.random.default_rng(8)
        points = rng.standard_normal((50, 3))
        seeds = kmeans_plusplus_init(points, k=4, rng=rng)
        for seed in seeds:
            assert any(np.allclose(seed, p) for p in points)

    def test_spreads_across_separated_blobs(self):
        from repro.workloads.rodinia import kmeans_plusplus_init
        rng = np.random.default_rng(9)
        blobs = np.concatenate([
            center + rng.standard_normal((30, 2)) * 0.1
            for center in (np.zeros(2), np.full(2, 50.0), np.full(2, -50.0))
        ])
        seeds = kmeans_plusplus_init(blobs, k=3, rng=rng)
        # One seed per blob: pairwise distances are all large.
        for i in range(3):
            for j in range(i + 1, 3):
                assert np.linalg.norm(seeds[i] - seeds[j]) > 10.0

    def test_k_validation(self):
        from repro.workloads.rodinia import kmeans_plusplus_init
        with pytest.raises(ValueError):
            kmeans_plusplus_init(np.zeros((3, 2)), k=4)

    def test_plusplus_reference_converges(self):
        rng = np.random.default_rng(10)
        points = np.concatenate([
            center + rng.standard_normal((40, 4))
            for center in (np.zeros(4), np.full(4, 12.0))
        ])
        result = kmeans_reference(points, k=2, rng=rng, plusplus=True)
        assert len(set(result["labels"][:40])) == 1
        assert len(set(result["labels"][40:])) == 1
