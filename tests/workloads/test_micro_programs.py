"""Structural tests for the microbenchmark device programs."""

import pytest

from repro.sim.kernel import AccessPattern
from repro.sim.sm import pipeline_fits
from repro.workloads.registry import MICRO_NAMES, get_workload
from repro.workloads.sizes import SizeClass


class TestFootprints:
    @pytest.mark.parametrize("name", MICRO_NAMES)
    @pytest.mark.parametrize("size", [SizeClass.TINY, SizeClass.LARGE,
                                      SizeClass.SUPER])
    def test_footprint_in_size_class_band(self, name, size):
        """Buffers stay within ~3x of the class footprint (gemm keeps
        three matrices, so its footprint is 3x the per-grid size)."""
        program = get_workload(name).program(size)
        assert size.mem_bytes * 0.4 <= program.footprint_bytes \
            <= size.mem_bytes * 3.5

    @pytest.mark.parametrize("name", MICRO_NAMES)
    def test_footprints_scale_with_size(self, name):
        workload = get_workload(name)
        small = workload.program(SizeClass.SMALL).footprint_bytes
        large = workload.program(SizeClass.LARGE).footprint_bytes
        # 8 MB -> 512 MB; side vectors (gemv's x/y) scale sublinearly.
        assert large == pytest.approx(64 * small, rel=0.05)


class TestDescriptors:
    def test_vector_seq_is_sequential(self):
        program = get_workload("vector_seq").program(SizeClass.LARGE)
        assert program.descriptors()[0].access_pattern is \
            AccessPattern.SEQUENTIAL

    def test_vector_rand_is_random(self):
        program = get_workload("vector_rand").program(SizeClass.LARGE)
        assert program.descriptors()[0].access_pattern is \
            AccessPattern.RANDOM

    def test_vector_seq_reference_geometry(self):
        """Sec. 5 baseline: 4096 blocks x 256 threads at Large."""
        descriptor = get_workload("vector_seq").program(
            SizeClass.LARGE).descriptors()[0]
        assert descriptor.blocks == 4096
        assert descriptor.threads_per_block == 256

    def test_gemm_is_software_pipelined(self):
        descriptor = get_workload("gemm").program(
            SizeClass.SUPER).descriptors()[0]
        assert descriptor.sync_overlap == 1.0
        assert descriptor.bandwidth_efficiency is not None

    def test_gemm_double_buffer_exactly_fills_default_carveout(self, system):
        descriptor = get_workload("gemm").program(
            SizeClass.SUPER).descriptors()[0]
        assert pipeline_fits(descriptor, system.gpu,
                             system.gpu.default_shared_mem_bytes)

    def test_convs_serialize_async_staging(self):
        for name in ("2DCONV", "3DCONV"):
            descriptor = get_workload(name).program(
                SizeClass.SUPER).descriptors()[0]
            assert descriptor.async_serializes

    def test_conv_footprint_matches_grid(self):
        program = get_workload("2DCONV").program(SizeClass.SUPER)
        descriptor = program.descriptors()[0]
        grid_bytes = SizeClass.SUPER.side_2d ** 2 * 4
        assert descriptor.data_footprint_bytes == grid_bytes

    def test_gemm_flops_on_roofline(self):
        """Compute cycles must encode 2*M^3 FLOPs at 128 FLOP/cycle."""
        side = SizeClass.LARGE.side_2d
        descriptor = get_workload("gemm").program(
            SizeClass.LARGE).descriptors()[0]
        expected_cycles = 2.0 * side ** 3 / 128.0
        assert descriptor.compute_cycles == pytest.approx(expected_cycles,
                                                          rel=0.01)

    def test_tiny_sizes_still_valid(self):
        for name in MICRO_NAMES:
            program = get_workload(name).program(SizeClass.TINY)
            for descriptor in program.descriptors():
                assert descriptor.blocks >= 1
                assert descriptor.tiles_per_block >= 1
