"""Every workload's functional face runs and returns named results."""

import numpy as np
import pytest

from repro.workloads.registry import ALL_NAMES, get_workload


@pytest.mark.parametrize("name", ALL_NAMES)
def test_reference_runs_and_returns_dict(name):
    result = get_workload(name).reference(np.random.default_rng(123))
    assert isinstance(result, dict)
    assert result


@pytest.mark.parametrize("name", ALL_NAMES)
def test_reference_deterministic_for_fixed_rng(name):
    workload = get_workload(name)
    first = workload.reference(np.random.default_rng(5))
    second = workload.reference(np.random.default_rng(5))
    for key, value in first.items():
        if isinstance(value, np.ndarray):
            np.testing.assert_array_equal(value, second[key])
