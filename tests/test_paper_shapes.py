"""The reproduction contract: the paper's headline shapes must hold.

These tests assert the *qualitative* findings (who wins, orderings,
crossovers) and the rough factors of the paper's evaluation, with
loose tolerances. EXPERIMENTS.md records the exact paper-vs-measured
numbers; this file keeps the suite honest against regressions in the
calibration.

Everything runs at reduced iteration counts (the simulator is
deterministic up to small seeded noise).
"""

import pytest

from repro.core.configs import TransferMode
from repro.core.experiment import Experiment
from repro.core.stats import geomean
from repro.harness.figures import comparison_sweep, counter_sweep
from repro.workloads.registry import APP_NAMES, MICRO_NAMES
from repro.workloads.sizes import SizeClass

ITERATIONS = 3

MODES = list(TransferMode)


@pytest.fixture(scope="module")
def micro_super():
    return comparison_sweep(MICRO_NAMES, SizeClass.SUPER,
                            iterations=ITERATIONS)


@pytest.fixture(scope="module")
def apps_super():
    return comparison_sweep(APP_NAMES, SizeClass.SUPER,
                            iterations=ITERATIONS)


def mode_geomean(comparisons, mode):
    return geomean([c.normalized_total(mode) for c in comparisons.values()])


class TestMicroGeomeans:
    """Sec. 4.1.1: async ~ standard; uvm slower; prefetch configs win."""

    def test_async_close_to_standard(self, micro_super):
        assert mode_geomean(micro_super, TransferMode.ASYNC) == \
            pytest.approx(1.0, abs=0.10)

    def test_uvm_without_prefetch_is_slower(self, micro_super):
        """Paper: +13.2 % slower at Super."""
        ratio = mode_geomean(micro_super, TransferMode.UVM)
        assert 1.02 < ratio < 1.35

    def test_uvm_prefetch_wins_big(self, micro_super):
        """Paper: 28.4 % faster at Super."""
        ratio = mode_geomean(micro_super, TransferMode.UVM_PREFETCH)
        assert ratio < 0.90

    def test_combination_close_behind_prefetch(self, micro_super):
        """Paper: uvm_prefetch_async slightly below uvm_prefetch on the
        micro geomean (27.0 vs 28.4 %)."""
        prefetch = mode_geomean(micro_super, TransferMode.UVM_PREFETCH)
        combined = mode_geomean(micro_super,
                                TransferMode.UVM_PREFETCH_ASYNC)
        assert combined > prefetch          # slightly worse...
        assert combined < 0.95              # ...but still a clear win

    def test_combination_best_for_vector_workloads(self, micro_super):
        """Paper: upa beats uvm_prefetch on vector_seq and vector_rand."""
        for name in ("vector_seq", "vector_rand"):
            comparison = micro_super[name]
            assert comparison.normalized_total(
                TransferMode.UVM_PREFETCH_ASYNC) < \
                comparison.normalized_total(TransferMode.UVM_PREFETCH)

    def test_combination_hurts_gemm_and_3dconv(self, micro_super):
        """Paper Fig. 7 caption: the combination does not benefit
        3DCONV and gemm."""
        for name in ("gemm", "3DCONV"):
            comparison = micro_super[name]
            assert comparison.normalized_total(
                TransferMode.UVM_PREFETCH_ASYNC) > \
                comparison.normalized_total(TransferMode.UVM_PREFETCH)


class TestMicroKernelEffects:
    def test_async_cuts_vector_seq_kernel_sharply(self, micro_super):
        """Paper: -41.78 % kernel time on vector_seq."""
        comparison = micro_super["vector_seq"]
        kernel_ratio = (comparison.by_mode[TransferMode.ASYNC]
                        .mean_component("gpu_kernel")
                        / comparison.baseline()
                        .mean_component("gpu_kernel"))
        assert 0.45 < kernel_ratio < 0.75

    def test_async_blows_up_2dconv_kernel(self, micro_super):
        """Paper: +146 % kernel time on 2DCONV."""
        comparison = micro_super["2DCONV"]
        kernel_ratio = (comparison.by_mode[TransferMode.ASYNC]
                        .mean_component("gpu_kernel")
                        / comparison.baseline()
                        .mean_component("gpu_kernel"))
        assert kernel_ratio > 1.7

    def test_uvm_doubles_kernels(self, micro_super):
        """Paper: 2.0-2.2x geomean kernel inflation under plain uvm."""
        ratios = []
        for comparison in micro_super.values():
            ratios.append(comparison.by_mode[TransferMode.UVM]
                          .mean_component("gpu_kernel")
                          / comparison.baseline()
                          .mean_component("gpu_kernel"))
        assert 1.5 < geomean(ratios) < 3.0

    def test_uvm_memcpy_savings(self, micro_super):
        """Paper: 31-35 % memcpy savings under uvm."""
        base = sum(c.baseline().mean_component("memcpy")
                   for c in micro_super.values())
        uvm = sum(c.by_mode[TransferMode.UVM].mean_component("memcpy")
                  for c in micro_super.values())
        saving = 1 - uvm / base
        assert 0.20 < saving < 0.45

    def test_gemm_async_kernel_overhead_moderate(self, micro_super):
        """Paper: gemm's async kernel pays ~8 % control overhead."""
        comparison = micro_super["gemm"]
        kernel_ratio = (comparison.by_mode[TransferMode.ASYNC]
                        .mean_component("gpu_kernel")
                        / comparison.baseline()
                        .mean_component("gpu_kernel"))
        assert 1.02 < kernel_ratio < 1.35


class TestAppGeomeans:
    """Sec. 4.1.2: +2.81 / -4.41 / +20.96 / +22.52 % for async / uvm /
    uvm_prefetch / uvm_prefetch_async."""

    def test_ordering_of_configurations(self, apps_super):
        ratios = {mode: mode_geomean(apps_super, mode) for mode in MODES}
        # uvm is the only config slower than standard.
        assert ratios[TransferMode.UVM] > 1.0
        assert ratios[TransferMode.ASYNC] < 1.0
        # The combination is the overall winner on apps.
        assert ratios[TransferMode.UVM_PREFETCH_ASYNC] < \
            ratios[TransferMode.UVM_PREFETCH] < 1.0
        assert ratios[TransferMode.UVM_PREFETCH_ASYNC] == \
            min(ratios.values())

    def test_combination_improvement_band(self, apps_super):
        """Paper: 22.52 %; accept a generous band."""
        improvement = 1 - mode_geomean(apps_super,
                                       TransferMode.UVM_PREFETCH_ASYNC)
        assert 0.12 < improvement < 0.35

    def test_memcpy_savings_ordering(self, apps_super):
        """Paper: 32.7 % (uvm) / 64.2 % (prefetch configs)."""
        base = sum(c.baseline().mean_component("memcpy")
                   for c in apps_super.values())

        def saving(mode):
            return 1 - sum(c.by_mode[mode].mean_component("memcpy")
                           for c in apps_super.values()) / base

        assert saving(TransferMode.UVM_PREFETCH) > \
            saving(TransferMode.UVM) > 0.15


class TestAppAnomalies:
    def test_lud_prefers_async_over_uvm(self, apps_super):
        """Paper: lud gains ~1.24x from Async Memcpy over UVM and gets
        nothing from prefetch."""
        lud = apps_super["lud"]
        async_ratio = lud.normalized_total(TransferMode.ASYNC)
        prefetch_ratio = lud.normalized_total(TransferMode.UVM_PREFETCH)
        assert async_ratio < 0.90
        assert prefetch_ratio > 0.95  # prefetch buys ~nothing
        # Speedup of async over uvm_prefetch in the paper's 1.24x band.
        assert prefetch_ratio / async_ratio > 1.10

    def test_lud_combination_keeps_async_speedup(self, apps_super):
        lud = apps_super["lud"]
        assert lud.normalized_total(TransferMode.UVM_PREFETCH_ASYNC) == \
            pytest.approx(lud.normalized_total(TransferMode.ASYNC),
                          abs=0.10)

    def test_nw_prefetch_hurts(self, apps_super):
        """Paper: prefetch downgrades nw regardless of async."""
        nw = apps_super["nw"]
        assert nw.normalized_total(TransferMode.UVM_PREFETCH) > \
            nw.normalized_total(TransferMode.UVM)

    def test_yolov3_combination_worse_than_prefetch(self, apps_super):
        """Paper: uvm_prefetch_async performs worse than uvm_prefetch
        on yolov3."""
        yolo = apps_super["yolov3"]
        assert yolo.normalized_total(TransferMode.UVM_PREFETCH_ASYNC) > \
            yolo.normalized_total(TransferMode.UVM_PREFETCH)

    def test_kmeans_gains_from_async_atop_uvm(self, apps_super):
        """Abstract: ~20 % benefit for kmeans from async atop UVM."""
        kmeans = apps_super["kmeans"]
        combined = kmeans.normalized_total(TransferMode.UVM_PREFETCH_ASYNC)
        prefetch_only = kmeans.normalized_total(TransferMode.UVM_PREFETCH)
        assert (prefetch_only - combined) / prefetch_only > 0.10


class TestCounterShapes:
    """Figs. 9-10."""

    @pytest.fixture(scope="class")
    def counters(self):
        return counter_sweep(workloads=("gemm", "lud", "yolov3"),
                             size=SizeClass.SUPER)

    def test_gemm_async_control_instructions(self, counters):
        """Paper: +39.98 % control instructions."""
        gemm = counters["gemm"]
        increase = gemm["async"]["control"] / gemm["standard"]["control"] - 1
        assert increase == pytest.approx(0.40, abs=0.10)

    def test_yolov3_async_control_instructions(self, counters):
        """Paper: +30.13 % control instructions."""
        yolo = counters["yolov3"]
        increase = yolo["async"]["control"] / yolo["standard"]["control"] - 1
        assert 0.15 < increase < 0.55

    def test_uvm_does_not_change_instruction_mix(self, counters):
        for name in ("gemm", "lud", "yolov3"):
            entry = counters[name]
            assert entry["uvm"]["control"] == pytest.approx(
                entry["standard"]["control"], rel=0.01)
            assert entry["uvm"]["integer"] == pytest.approx(
                entry["standard"]["integer"], rel=0.01)

    def test_lud_miss_rates_collapse_under_async(self, counters):
        """Paper: -35.96 % load, -69.99 % store miss rate."""
        lud = counters["lud"]
        load_drop = 1 - lud["async"]["load_miss"] / lud["standard"]["load_miss"]
        store_drop = 1 - lud["async"]["store_miss"] / lud["standard"]["store_miss"]
        assert load_drop == pytest.approx(0.36, abs=0.08)
        assert store_drop == pytest.approx(0.70, abs=0.08)

    def test_gemm_miss_rates_unchanged_under_async(self, counters):
        gemm = counters["gemm"]
        assert gemm["async"]["load_miss"] == pytest.approx(
            gemm["standard"]["load_miss"], rel=0.05)


class TestInputSizeStability:
    def test_mega_less_stable_than_super(self):
        """Takeaway 1: Mega is noisier than Large/Super despite being
        bigger."""
        cvs = {}
        for size in (SizeClass.SUPER, SizeClass.MEGA):
            experiment = Experiment(workload="vector_seq", size=size,
                                    modes=(TransferMode.STANDARD,),
                                    iterations=12)
            cvs[size] = experiment.run_mode(TransferMode.STANDARD).cv()
        assert cvs[SizeClass.MEGA] > cvs[SizeClass.SUPER]
