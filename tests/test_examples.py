"""The shipped examples must run end-to-end.

Each example is executed as a subprocess (the way a user runs it) with
reduced iteration counts, and its headline output is checked.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parents[1] / "examples"


def run_example(name, *args, timeout=600):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--iterations", "2",
                          "--size", "large")
        assert "best configuration" in out
        assert "timeline" in out
        assert "uvm_prefetch_async" in out

    def test_quickstart_other_workload(self):
        out = run_example("quickstart.py", "--iterations", "2",
                          "--size", "large", "--workload", "lud")
        assert "lud @ large" in out

    def test_tune_a_kernel(self):
        out = run_example("tune_a_kernel.py")
        assert "Step 1" in out
        assert "recommended configuration" in out
        assert "nw" in out

    def test_ml_inference_service(self):
        out = run_example("ml_inference_service.py", "--iterations", "2")
        assert "yolov3-tiny" in out
        assert "Inter-job pipeline" in out
        assert "% faster" in out

    def test_irregular_workloads(self):
        out = run_example("irregular_workloads.py")
        assert "LU factorization" in out
        assert "control insts" in out

    def test_multi_gpu_scaling(self, tmp_path):
        out = run_example("multi_gpu_scaling.py", "--out", str(tmp_path))
        assert "8 GPUs" in out
        assert (tmp_path / "trace_upa.json").exists()

    def test_sweep_client(self):
        out = run_example("sweep_client.py", "--spawn",
                          "--iterations", "2")
        assert "healthz: 200" in out
        assert "cache tiers: {'hot': 20}" in out
        assert "mean wall time by mode" in out
        assert "server drained and stopped" in out

    def test_paper_walkthrough(self):
        out = run_example("paper_walkthrough.py", "--iterations", "2")
        for takeaway in ("TAKEAWAY 1", "TAKEAWAY 2", "TAKEAWAY 3",
                         "TAKEAWAY 4", "TAKEAWAY 5"):
            assert takeaway in out
