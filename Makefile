# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make lint` is the full pre-merge gate.
#
# ruff is optional locally (part of the [dev] extra): when it is not
# installed the style leg is skipped with a notice, never silently
# swallowed — the other two legs still fail the target on findings.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint lint-style lint-model lint-static test baseline manifest

lint: lint-style lint-model lint-static

lint-style:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	elif $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src tests; \
	else \
		echo "lint-style: ruff not installed, skipping (CI runs it)"; \
	fi

lint-model:
	$(PYTHON) -m repro lint --all --format json > /dev/null
	@echo "lint-model: clean"

lint-static:
	$(PYTHON) -m repro lint --static --strict

test:
	$(PYTHON) -m pytest -q

# Regenerate the static-analysis baseline (grandfathers current
# findings; see docs/LINTING.md before reaching for this).
baseline:
	$(PYTHON) -m repro lint --static --write-baseline

# Acknowledge fingerprint-schema drift (F505). Bump CODE_VERSION in
# src/repro/harness/executor.py in the same commit.
manifest:
	$(PYTHON) -m repro lint --static --update-manifest
