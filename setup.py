"""Setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` (and the
legacy ``python setup.py develop`` fallback) work on machines without
the ``wheel`` package installed.
"""

from setuptools import setup

setup()
