"""Fig. 4: execution-time distributions across input sizes (micro suite).

Regenerates the per-size distributions and asserts the figure's
message: Large and Super are the most stable sizes.
"""

from repro.core.stats import Summary, geomean
from repro.harness.figures import fig4_distributions
from repro.harness.report import render_table
from repro.workloads.registry import MICRO_NAMES
from repro.workloads.sizes import SizeClass


def bench_fig4(benchmark, save_result, iterations):
    data = benchmark.pedantic(
        lambda: fig4_distributions(iterations=iterations), rounds=1,
        iterations=1)

    rows = []
    for size in SizeClass.ordered():
        for name in MICRO_NAMES:
            # gemm/3DCONV decline Mega: explicit allocation > HBM.
            if name not in data[size.label]:
                continue
            for mode, totals in data[size.label][name].items():
                summary = Summary.of(totals)
                rows.append((size.label, name, mode,
                             f"{summary.mean / 1e6:.1f}",
                             f"{summary.minimum / 1e6:.1f}",
                             f"{summary.maximum / 1e6:.1f}",
                             f"{summary.cv:.4f}"))
    text = render_table(
        ("size", "workload", "config", "mean (ms)", "min (ms)", "max (ms)",
         "std/mean"), rows,
        title=f"Fig. 4: execution-time distributions ({iterations} runs)")
    save_result("fig4_size_distributions", text)
    print("\n" + text)

    # The figure's message: Large/Super are the most stable classes.
    def size_cv(label):
        cvs = []
        for name in MICRO_NAMES:
            for totals in data[label].get(name, {}).values():
                cvs.append(Summary.of(totals).cv)
        return geomean([max(cv, 1e-6) for cv in cvs])

    assert size_cv("large") < size_cv("tiny")
    assert size_cv("super") < size_cv("tiny")
