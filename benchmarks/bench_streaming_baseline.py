"""Extension: the hand-tuned streaming baseline vs the five configs.

The paper's related work ([8, 11]) overlaps transfers with compute via
explicit chunked copies on multiple streams. This bench quantifies how
much of uvm_prefetch's advantage that diligence recovers - and how much
only UVM can deliver (avoided D2H + no hand-tuning).
"""

from repro.core.configs import TransferMode
from repro.core.execution import execute_program
from repro.core.streaming import execute_program_streamed
from repro.harness.report import render_table
from repro.workloads.registry import get_workload
from repro.workloads.sizes import SizeClass


def bench_streaming_baseline(benchmark, save_result):
    program = get_workload("vector_seq").program(SizeClass.SUPER)

    def run():
        rows = {}
        rows["standard"] = execute_program(program, TransferMode.STANDARD,
                                           seed=5).wall_ns
        for chunks in (2, 4, 8, 16):
            rows[f"streams x{chunks}"] = execute_program_streamed(
                program, chunks=chunks, pinned=False, seed=5).wall_ns
        # Pinned memory: full-bandwidth DMA, but one-shot pinning of a
        # 4 GB buffer costs more than it saves (pinning pays off only
        # when buffers are reused across batches).
        rows["streams x8 pinned"] = execute_program_streamed(
            program, chunks=8, pinned=True, seed=5).wall_ns
        rows["uvm_prefetch"] = execute_program(
            program, TransferMode.UVM_PREFETCH, seed=5).wall_ns
        rows["uvm_prefetch_async"] = execute_program(
            program, TransferMode.UVM_PREFETCH_ASYNC, seed=5).wall_ns
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = rows["standard"]
    table = [(label, f"{value / 1e6:.1f}", f"{baseline / value:.3f}x")
             for label, value in rows.items()]
    text = render_table(("configuration", "wall (ms)", "speedup"), table,
                        title="Extension: chunked streams vs UVM "
                              "(vector_seq @ super, wall time)")
    save_result("ext_streaming_baseline", text)
    print("\n" + text)

    # Chunking helps over plain standard...
    assert rows["streams x8"] < rows["standard"]
    # ...but uvm_prefetch still wins (the paper's pitch).
    assert rows["uvm_prefetch"] < rows["streams x8"]
