"""Fig. 5: std/mean of repeated runs per input size.

Paper finding: stability improves from Tiny to Large/Super, and Mega
regresses (host DRAM chip-capacity effect).
"""

from repro.harness.figures import (fig4_distributions, fig5_stability,
                                   render_fig5)


def bench_fig5(benchmark, save_result, iterations):
    def compute():
        distributions = fig4_distributions(iterations=max(iterations, 10))
        return fig5_stability(distributions)

    stability = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = render_fig5(stability)
    save_result("fig5_stability", text)
    print("\n" + text)

    geo = stability["Geo-mean"]
    # Takeaway 1's two claims.
    assert geo["large"] < geo["tiny"]
    assert geo["super"] < geo["tiny"]
    assert geo["mega"] > geo["super"]
