"""Fig. 6: per-run breakdown of vector_seq at the Mega input size.

Paper finding: allocation and kernel time are stable run-to-run, but
memcpy time swings (data spills across host DRAM chips).
"""

from repro.core.stats import coefficient_of_variation
from repro.harness.figures import fig6_mega_breakdown, render_fig6


def bench_fig6(benchmark, save_result):
    breakdowns = benchmark.pedantic(
        lambda: fig6_mega_breakdown(iterations=30), rounds=1, iterations=1)
    text = render_fig6(breakdowns)
    save_result("fig6_mega_breakdown", text)
    print("\n" + text)

    memcpy_cv = coefficient_of_variation([b["memcpy"] for b in breakdowns])
    kernel_cv = coefficient_of_variation([b["gpu_kernel"]
                                          for b in breakdowns])
    alloc_cv = coefficient_of_variation([b["allocation"]
                                         for b in breakdowns])
    summary = (f"memcpy cv={memcpy_cv:.4f}  kernel cv={kernel_cv:.4f}  "
               f"allocation cv={alloc_cv:.4f}")
    print(summary)
    save_result("fig6_cv_summary", text + "\n" + summary)
    # Memcpy is the unstable component.
    assert memcpy_cv > 3 * kernel_cv
    assert memcpy_cv > 2.5 * alloc_cv
