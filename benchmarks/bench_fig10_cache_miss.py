"""Fig. 10: unified-L1 miss-rate comparison on gemm / lud / yolov3.

Paper finding: Async Memcpy cuts lud's load miss rate by 35.96 % and
its store miss rate by 69.99 %; gemm/yolov3 barely move.
"""

from repro.harness.figures import fig10_cache_miss, render_counters


def bench_fig10(benchmark, save_result):
    data = benchmark.pedantic(fig10_cache_miss, rounds=1, iterations=1)
    text = render_counters(data, ("load_miss", "store_miss"),
                           "Fig. 10: L1 global load/store miss rates")
    lud = data["lud"]
    load_drop = (1 - lud["async"]["load_miss"]
                 / lud["standard"]["load_miss"]) * 100
    store_drop = (1 - lud["async"]["store_miss"]
                  / lud["standard"]["store_miss"]) * 100
    text += (f"\nlud async: load miss -{load_drop:.2f}% "
             f"(paper -35.96%), store miss -{store_drop:.2f}% "
             f"(paper -69.99%)")
    save_result("fig10_cache_miss", text)
    print("\n" + text)

    assert 28 < load_drop < 44
    assert 60 < store_drop < 78
    gemm = data["gemm"]
    assert abs(gemm["async"]["load_miss"]
               / gemm["standard"]["load_miss"] - 1) < 0.05
