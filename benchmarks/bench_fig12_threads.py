"""Fig. 12: sensitivity of vector_seq to threads per block.

Paper findings (Takeaway 4): strong sensitivity below 128 threads
(kernel time 3.95x at 32 vs 128 threads), and Async Memcpy's benefit
grows as threads shrink (1.01 % at 1024 -> 16.51 % at 32).
"""

from repro.harness.sensitivity import (normalized_sweep, render_sweep,
                                       threads_sensitivity)


def bench_fig12(benchmark, save_result, iterations):
    data = benchmark.pedantic(
        lambda: threads_sensitivity(iterations=max(3, iterations // 2)),
        rounds=1, iterations=1)
    normalized = normalized_sweep(data, baseline_key=1024)
    text = render_sweep(normalized, "#threads",
                        "Fig. 12: vector_seq vs threads/block "
                        "(normalized to standard @ 1024)")

    kernel_ratio = (data[32]["standard"].mean_component("gpu_kernel")
                    / data[128]["standard"].mean_component("gpu_kernel"))
    gain_low = (1 - data[32]["async"].mean_total_ns()
                / data[32]["standard"].mean_total_ns()) * 100
    gain_high = (1 - data[1024]["async"].mean_total_ns()
                 / data[1024]["standard"].mean_total_ns()) * 100
    text += (f"\nkernel time 32 vs 128 threads: {kernel_ratio:.2f}x "
             f"(paper 3.95x)"
             f"\nasync total gain: {gain_high:+.2f}% @1024 -> "
             f"{gain_low:+.2f}% @32 (paper +1.01% -> +16.51%)")
    save_result("fig12_threads", text)
    print("\n" + text)

    assert 2.5 < kernel_ratio < 5.0
    assert gain_low > gain_high
    assert normalized[32]["standard"] > 1.2  # >50 % total swing band
