"""Table 3: the Tiny..Mega input-size classes."""

from repro.harness.tables import table3_rows, table3_sizes


def bench_table3(benchmark, save_result):
    text = benchmark.pedantic(table3_sizes, rounds=1, iterations=1)
    save_result("table3_sizes", text)
    print("\n" + text)
    rows = table3_rows()
    assert [row[0] for row in rows] == ["Tiny", "Small", "Medium", "Large",
                                        "Super", "Mega"]
