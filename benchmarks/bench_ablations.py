"""Ablations of the simulator's design choices (DESIGN.md Sec. 5).

Each ablation disables one modelled mechanism and shows the paper
behaviour it is responsible for disappearing:

1. fault batching       -> unbatched UVM fault servicing is disastrous;
2. prefetch L2-warming  -> uvm_prefetch collapses toward plain uvm;
3. double buffering     -> async degenerates to overhead-only;
4. cross-chip placement -> the Mega-size memcpy instability vanishes.
"""

import dataclasses

from repro.core.configs import TransferMode
from repro.core.experiment import Experiment
from repro.harness.report import render_table
from repro.sim.calibration import default_calibration
from repro.sim.hardware import default_system
from repro.workloads.sizes import SizeClass


def _mean_total(workload, mode, size=SizeClass.SUPER, system=None,
                calib=None, iterations=3, smem=None):
    experiment = Experiment(workload=workload, size=size, modes=(mode,),
                            iterations=iterations, system=system,
                            calib=calib, smem_carveout_bytes=smem)
    return experiment.run_mode(mode).mean_total_ns()


def bench_ablation_fault_batching(benchmark, save_result):
    def run():
        system = default_system()
        unbatched = system.with_uvm(fault_batch_size=1)
        return (_mean_total("vector_seq", TransferMode.UVM, system=system),
                _mean_total("vector_seq", TransferMode.UVM,
                            system=unbatched))

    batched, unbatched = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ("fault batch size", "uvm total (ms)"),
        [("64 (default)", f"{batched / 1e6:.1f}"),
         ("1 (ablated)", f"{unbatched / 1e6:.1f}")],
        title="Ablation 1: UVM fault batching")
    save_result("ablation_fault_batching", text)
    print("\n" + text)
    assert unbatched > 1.3 * batched


def bench_ablation_prefetch_gain(benchmark, save_result):
    def run():
        calib = default_calibration()
        no_gain = dataclasses.replace(
            calib, kernel=dataclasses.replace(calib.kernel,
                                              prefetch_l2_gain=1.0))
        with_gain = _mean_total("vector_seq", TransferMode.UVM_PREFETCH,
                                calib=calib)
        without = _mean_total("vector_seq", TransferMode.UVM_PREFETCH,
                              calib=no_gain)
        return with_gain, without

    with_gain, without = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ("L2-warming", "uvm_prefetch total (ms)"),
        [("on (default)", f"{with_gain / 1e6:.1f}"),
         ("off (ablated)", f"{without / 1e6:.1f}")],
        title="Ablation 2: prefetch L2-warming")
    save_result("ablation_prefetch_gain", text)
    print("\n" + text)
    assert without > with_gain


def bench_ablation_double_buffer(benchmark, save_result):
    def run():
        # 2 KiB carveout cannot hold vector_seq's 2x2 KiB double buffer.
        fits = _mean_total("vector_seq", TransferMode.ASYNC,
                           smem=32 * 1024)
        misfit = _mean_total("vector_seq", TransferMode.ASYNC,
                             smem=2 * 1024)
        standard = _mean_total("vector_seq", TransferMode.STANDARD,
                               smem=32 * 1024)
        return fits, misfit, standard

    fits, misfit, standard = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ("configuration", "total (ms)"),
        [("async, buffers fit", f"{fits / 1e6:.1f}"),
         ("async, buffers do not fit", f"{misfit / 1e6:.1f}"),
         ("standard", f"{standard / 1e6:.1f}")],
        title="Ablation 3: async double-buffer capacity")
    save_result("ablation_double_buffer", text)
    print("\n" + text)
    assert fits < standard       # async pays off when it can overlap
    assert misfit > fits         # and degenerates when it cannot


def bench_ablation_cross_chip(benchmark, save_result):
    def run():
        calib = default_calibration()
        no_spill = dataclasses.replace(
            calib, noise=dataclasses.replace(calib.noise,
                                             spill_threshold=10.0))
        cvs = {}
        for label, c in (("spill on", calib), ("spill off", no_spill)):
            runs = Experiment(workload="vector_seq", size=SizeClass.MEGA,
                              modes=(TransferMode.STANDARD,),
                              iterations=12, calib=c).run_mode(
                TransferMode.STANDARD)
            cvs[label] = runs.cv()
        return cvs

    cvs = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ("host placement model", "Mega std/mean"),
        [(label, f"{value:.4f}") for label, value in cvs.items()],
        title="Ablation 4: cross-chip host placement (Fig. 6 inverse)")
    save_result("ablation_cross_chip", text)
    print("\n" + text)
    assert cvs["spill on"] > 1.5 * cvs["spill off"]
