"""Table 1: hardware configurations used in the study."""

from repro.harness.tables import table1_hardware


def bench_table1(benchmark, save_result):
    text = benchmark.pedantic(table1_hardware, rounds=1, iterations=1)
    save_result("table1_hardware", text)
    print("\n" + text)
    assert "A100" in text and "EPYC 7742" in text
