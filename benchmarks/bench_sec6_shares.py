"""Sec. 6.1: where the time goes before and after optimization.

Paper numbers (app suite, standard -> uvm_prefetch_async): transfer
share 55.86 % -> 24.55 %, GPU busy 25.15 % -> 37.79 %, allocation
share 18.99 % -> 37.66 %.
"""

from repro.core.discussion import section6_shares


def bench_sec6(benchmark, save_result):
    summary = benchmark.pedantic(
        lambda: section6_shares(iterations=2), rounds=1, iterations=1)
    text = summary.render()
    text += (f"\n\ntransfer share drop: "
             f"{summary.transfer_share_drop * 100:+.2f} pts "
             "(paper: -31.31 pts)"
             f"\nallocation share rise: "
             f"{summary.allocation_share_rise * 100:+.2f} pts "
             "(paper: +18.67 pts)"
             f"\nGPU busy gain: {summary.occupancy_gain * 100:+.2f} pts "
             "(paper: +12.64 pts)")
    save_result("sec6_shares", text)
    print("\n" + text)

    assert summary.transfer_share_drop > 0.02
    assert summary.allocation_share_rise > 0.03
    # Deviation from the paper: our prefetch-warmed kernels shrink, so
    # the GPU-busy share does not rise the way the paper's does (their
    # UVM kernels get *slower*); see EXPERIMENTS.md.
    assert 0.2 < summary.optimized.gpu_busy < 0.8
