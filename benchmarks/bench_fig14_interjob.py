"""Fig. 14 / Sec. 6.2: the proposed inter-job data-transfer model.

Paper projection: overlapping job i+1's allocation with job i's kernel
recovers the allocation share, an estimated >30 % improvement in the
ideal case.
"""

from repro.core.configs import TransferMode
from repro.core.pipeline_model import interjob_speedup
from repro.harness.report import render_table
from repro.workloads.registry import get_workload
from repro.workloads.sizes import SizeClass


def bench_fig14(benchmark, save_result):
    program = get_workload("vector_seq").program(SizeClass.SUPER)

    def sweep():
        return {
            mode: interjob_speedup(program, mode, jobs=8)
            for mode in (TransferMode.STANDARD,
                         TransferMode.UVM_PREFETCH,
                         TransferMode.UVM_PREFETCH_ASYNC)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(mode.value,
             f"{entry['sequential_wall_ns'] / 1e6:.1f}",
             f"{entry['pipelined_wall_ns'] / 1e6:.1f}",
             f"{entry['speedup']:.3f}",
             f"{entry['improvement_pct']:.2f}%")
            for mode, entry in results.items()]
    text = render_table(
        ("config", "sequential (ms)", "pipelined (ms)", "speedup",
         "improvement"), rows,
        title="Fig. 14: inter-job pipeline, 8 vector_seq jobs @ super")
    save_result("fig14_interjob", text)
    print("\n" + text)

    best = results[TransferMode.UVM_PREFETCH_ASYNC]
    assert best["improvement_pct"] > 15.0
    for entry in results.values():
        assert entry["speedup"] > 1.0
