"""Fig. 13: sensitivity to the L1-cache / shared-memory partition.

Paper finding (Takeaway 5): too little shared memory (no room for the
double buffer) hurts Async Memcpy; too much (too little L1) hurts the
UVM configurations.
"""

from repro.harness.sensitivity import (carveout_sensitivity,
                                       normalized_sweep, render_sweep)


def bench_fig13(benchmark, save_result, iterations):
    data = benchmark.pedantic(
        lambda: carveout_sensitivity(iterations=max(3, iterations // 2)),
        rounds=1, iterations=1)
    normalized = normalized_sweep(data, baseline_key=32)
    text = render_sweep(normalized, "smem KB",
                        "Fig. 13: vector_seq vs smem carveout "
                        "(normalized to standard @ 32 KB)")
    save_result("fig13_carveout", text)
    print("\n" + text)

    # Async pays at 2 KB (double buffer does not fit).
    assert data[2]["async"].mean_total_ns() > \
        data[8]["async"].mean_total_ns()
    # UVM pays at 128 KB (L1 squeezed).
    assert data[128]["uvm_prefetch"].mean_total_ns() > \
        data[32]["uvm_prefetch"].mean_total_ns()
    # Standard does not care.
    assert abs(normalized[128]["standard"] - normalized[4]["standard"]) \
        < 0.05
