"""Table 2: the 21-workload benchmark suite."""

from repro.harness.tables import table2_rows, table2_suite


def bench_table2(benchmark, save_result):
    text = benchmark.pedantic(table2_suite, rounds=1, iterations=1)
    save_result("table2_suite", text)
    print("\n" + text)
    rows = table2_rows()
    assert len(rows) == 21
    micro = [row for row in rows if row[0] == "Micro"]
    apps = [row for row in rows if row[0] == "Apps"]
    assert len(micro) == 7 and len(apps) == 14
