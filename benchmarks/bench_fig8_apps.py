"""Fig. 8: real-world application comparison at Super.

Paper headline numbers: async +2.81 %, uvm -4.41 %, uvm_prefetch
+20.96 %, uvm_prefetch_async +22.52 % (best); memcpy savings 32.70 /
64.24 / 64.18 %; anomalies: lud (async-only winner), nw (prefetch
hurts), yolov3 (combination worse than prefetch-only).
"""

from repro.core.configs import TransferMode
from repro.harness.figures import (fig8_apps, geomean_improvements,
                                   render_comparison)
from repro.harness.plots import render_stacked_suite


def bench_fig8(benchmark, save_result, iterations):
    comparisons = benchmark.pedantic(
        lambda: fig8_apps(iterations=max(3, iterations // 2)), rounds=1,
        iterations=1)
    text = render_comparison(
        comparisons, "Fig. 8: real-world applications @ super "
        "(normalized total)")
    improvements = geomean_improvements(comparisons)
    text += "\ngeomean improvement over standard: " + "  ".join(
        f"{mode}={value:+.2f}%" for mode, value in improvements.items())

    base_memcpy = sum(c.baseline().mean_component("memcpy")
                      for c in comparisons.values())
    savings = {}
    for mode in (TransferMode.UVM, TransferMode.UVM_PREFETCH,
                 TransferMode.UVM_PREFETCH_ASYNC):
        memcpy = sum(c.by_mode[mode].mean_component("memcpy")
                     for c in comparisons.values())
        savings[mode.value] = (1 - memcpy / base_memcpy) * 100
    text += "\nmemcpy savings vs standard: " + "  ".join(
        f"{mode}={value:.2f}%" for mode, value in savings.items())
    save_result("fig8_apps", text)
    save_result("fig8_apps_bars", render_stacked_suite(comparisons))
    print("\n" + text)

    # Headline shape: the combination is the best config on apps.
    assert improvements["uvm_prefetch_async"] == max(improvements.values())
    assert improvements["uvm"] < 0
    # Anomalies.
    lud = comparisons["lud"]
    assert lud.normalized_total(TransferMode.ASYNC) < \
        lud.normalized_total(TransferMode.UVM_PREFETCH)
    nw = comparisons["nw"]
    assert nw.normalized_total(TransferMode.UVM_PREFETCH) > \
        nw.normalized_total(TransferMode.UVM)
    yolo = comparisons["yolov3"]
    assert yolo.normalized_total(TransferMode.UVM_PREFETCH_ASYNC) > \
        yolo.normalized_total(TransferMode.UVM_PREFETCH)
