"""Extension: mechanism-level validation benches.

Two mechanism studies backing the analytic models:

1. Page-granular UVM fault replay (``sim.pagesim``): per access
   pattern, the demand fault rate and how much the driver's sequential
   prefetcher recovers - the mechanism behind Takeaway 2.
2. cp.async synchronization primitives: the Pipeline API vs
   Arrive/Wait Barriers (the paper picked Pipeline "since it showed
   better performance", Sec. 3.2.1).
"""

import dataclasses

from repro.core.configs import TransferMode
from repro.harness.report import render_table
from repro.sim.kernel import AsyncMechanism
from repro.sim.pagesim import fault_study
from repro.workloads.micro.vectors import VectorSeq
from repro.workloads.sizes import SizeClass


def bench_pagesim_mechanism(benchmark, save_result):
    study = benchmark.pedantic(
        lambda: fault_study(total_pages=16384, accesses=65536), rounds=1,
        iterations=1)
    rows = [(pattern,
             f"{entry['faults']}",
             f"{entry['faults_with_prefetch']}",
             f"{entry['fault_reduction'] * 100:.1f}%",
             f"{entry['prefetch_accuracy']:.2f}")
            for pattern, entry in study.items()]
    text = render_table(
        ("pattern", "demand faults", "faults w/ prefetch",
         "fault reduction", "prefetch accuracy"), rows,
        title="Mechanism: page-level fault replay "
              "(why prefetch helps regular patterns only)")
    save_result("ext_pagesim_mechanism", text)
    print("\n" + text)

    assert study["sequential"]["fault_reduction"] > 0.5
    assert study["strided"]["fault_reduction"] > 0.5
    assert study["random"]["fault_reduction"] < 0.3
    assert study["irregular"]["fault_reduction"] < 0.3


def bench_async_mechanism(benchmark, save_result):
    """Sec. 3.2.1: Pipeline API vs Arrive/Wait Barriers on vector_seq."""

    def run():
        workload = VectorSeq()
        program = workload.program(SizeClass.SUPER)
        barrier_desc = dataclasses.replace(
            program.descriptors()[0],
            async_mechanism=AsyncMechanism.ARRIVE_WAIT)
        barrier_program = dataclasses.replace(
            program,
            phases=(dataclasses.replace(program.phases[0],
                                        descriptor=barrier_desc),))
        from repro.core.execution import execute_program
        results = {}
        for label, prog in (("pipeline", program),
                            ("arrive_wait", barrier_program)):
            runs = [execute_program(prog, TransferMode.ASYNC, seed=s)
                    for s in range(3)]
            results[label] = sum(r.kernel_ns for r in runs) / 3
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(label, f"{value / 1e6:.1f}")
            for label, value in results.items()]
    text = render_table(
        ("cp.async mechanism", "async kernel time (ms)"), rows,
        title="Mechanism: Pipeline API vs Arrive/Wait Barriers "
              "(Sec. 3.2.1)")
    ratio = results["arrive_wait"] / results["pipeline"]
    text += f"\narrive/wait is {ratio:.2f}x the Pipeline API kernel time"
    save_result("ext_async_mechanism", text)
    print("\n" + text)

    assert results["arrive_wait"] > results["pipeline"]
