"""Fig. 9: instruction-mix comparison on gemm / lud / yolov3.

Paper finding: Async Memcpy raises control-instruction counts
(+39.98 % on gemm, +30.13 % on yolov3); UVM leaves the mix unchanged.
"""

from repro.harness.figures import fig9_instruction_mix, render_counters


def bench_fig9(benchmark, save_result):
    data = benchmark.pedantic(fig9_instruction_mix, rounds=1, iterations=1)
    text = render_counters(data, ("control", "integer"),
                           "Fig. 9: control / integer instruction counts")
    deltas = []
    for name in ("gemm", "lud", "yolov3"):
        increase = (data[name]["async"]["control"]
                    / data[name]["standard"]["control"] - 1) * 100
        deltas.append(f"{name}: async control insts {increase:+.2f}%")
    text += "\n" + "\n".join(deltas)
    save_result("fig9_instruction_mix", text)
    print("\n" + text)

    gemm_up = data["gemm"]["async"]["control"] \
        / data["gemm"]["standard"]["control"] - 1
    yolo_up = data["yolov3"]["async"]["control"] \
        / data["yolov3"]["standard"]["control"] - 1
    assert 0.30 < gemm_up < 0.50       # paper: +39.98 %
    assert 0.15 < yolo_up < 0.55       # paper: +30.13 %
    for name in ("gemm", "lud", "yolov3"):
        assert abs(data[name]["uvm"]["control"]
                   / data[name]["standard"]["control"] - 1) < 0.02
