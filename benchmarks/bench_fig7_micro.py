"""Fig. 7: microbenchmark comparison at Large and Super.

Paper headline numbers (Super): async ~ standard; uvm ~13 % slower;
uvm_prefetch +28.4 %; uvm_prefetch_async +27.0 % (slightly below
uvm_prefetch, but best on vector_seq / vector_rand).
"""

from repro.core.configs import TransferMode
from repro.harness.figures import (fig7_micro, geomean_improvements,
                                   render_comparison)
from repro.harness.plots import render_stacked_suite
from repro.workloads.sizes import SizeClass


def _run(benchmark, save_result, iterations, size, tag):
    comparisons = benchmark.pedantic(
        lambda: fig7_micro(size=size, iterations=iterations), rounds=1,
        iterations=1)
    text = render_comparison(
        comparisons, f"Fig. 7{tag}: micro @ {size.label} "
        f"(normalized total, {iterations} runs)")
    improvements = geomean_improvements(comparisons)
    text += "\ngeomean improvement over standard: " + "  ".join(
        f"{mode}={value:+.2f}%" for mode, value in improvements.items())
    save_result(f"fig7{tag}_micro_{size.label}", text)
    save_result(f"fig7{tag}_micro_{size.label}_bars",
                render_stacked_suite(comparisons))
    print("\n" + text)
    return comparisons, improvements


def bench_fig7a_large(benchmark, save_result, iterations):
    comparisons, improvements = _run(benchmark, save_result, iterations,
                                     SizeClass.LARGE, "a")
    # Large: the constant allocation overhead caps prefetch's gain.
    assert improvements["uvm"] < 0
    assert improvements["uvm_prefetch"] > improvements["uvm"]


def bench_fig7b_super(benchmark, save_result, iterations):
    comparisons, improvements = _run(benchmark, save_result, iterations,
                                     SizeClass.SUPER, "b")
    assert abs(improvements["async"]) < 10.0
    assert improvements["uvm"] < -2.0             # slower than standard
    assert improvements["uvm_prefetch"] > 10.0
    assert improvements["uvm_prefetch_async"] > 5.0
    # The combination wins on the vector workloads specifically.
    for name in ("vector_seq", "vector_rand"):
        assert comparisons[name].normalized_total(
            TransferMode.UVM_PREFETCH_ASYNC) < \
            comparisons[name].normalized_total(TransferMode.UVM_PREFETCH)
