"""Fig. 11: sensitivity of vector_seq to the number of blocks.

Paper finding (Takeaway 4): performance is insensitive to block count
in the saturated band; the relative benefits of async/uvm_prefetch
stay roughly constant (2.77 % / 21.34 % / 22.38 % on average).
"""

from repro.harness.sensitivity import (BLOCK_SWEEP, blocks_sensitivity,
                                       normalized_sweep, render_sweep)


def bench_fig11(benchmark, save_result, iterations):
    data = benchmark.pedantic(
        lambda: blocks_sensitivity(iterations=max(3, iterations // 2)),
        rounds=1, iterations=1)
    normalized = normalized_sweep(data)
    text = render_sweep(normalized, "#blocks",
                        "Fig. 11: vector_seq vs #blocks "
                        "(normalized to standard @ 4096)")
    save_result("fig11_blocks", text)
    print("\n" + text)

    # Saturated band (>= 1024 blocks): flat within ~3 %.
    for count in (4096, 2048, 1024):
        assert abs(normalized[count]["standard"] - 1.0) < 0.03
    # The config benefits persist at every block count.
    for count in BLOCK_SWEEP:
        standard = data[count]["standard"].mean_total_ns()
        prefetch = data[count]["uvm_prefetch"].mean_total_ns()
        assert prefetch < standard
