"""Shared benchmark plumbing.

Every ``bench_*`` module regenerates one table or figure of the paper.
Rendered outputs are written to ``benchmarks/results/`` so the
reproduction artifacts survive the run (EXPERIMENTS.md quotes them).

Iteration counts default to a fast setting; set
``REPRO_BENCH_ITERATIONS=30`` to match the paper's 30-run protocol.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_iterations(default: int = 10) -> int:
    return int(os.environ.get("REPRO_BENCH_ITERATIONS", default))


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")

    return _save


@pytest.fixture(scope="session")
def iterations():
    return bench_iterations()
